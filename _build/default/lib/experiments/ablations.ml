(** The ablation studies called out in DESIGN.md §4, complementing the
    paper's Appendix D:

    - the feedback *sensitivity ladder* (§VII: block ⊂ edge ⊂ n-gram ⊂
      acyclic paths) compared on bug finding and queue size;
    - the *culling criterion* (edge-preserving vs path-preserving vs
      random — the §III-B1 footnote says edges win);
    - the culling *round count* (the paper's footnote 2 sensitivity study
      on round duration: too-long rounds are detrimental). *)

let run_set (cfg : Config.t) ~budget ~trials subjects fuzzers =
  let cells = Hashtbl.create 32 in
  List.iter
    (fun name ->
      let s = Subjects.Registry.find_exn name in
      let prog = Subjects.Subject.program s in
      let plans = Pathcov.Ball_larus.of_program prog in
      List.iter
        (fun (fz : Fuzz.Strategy.fuzzer) ->
          let runs =
            List.init trials (fun t ->
                Fuzz.Strategy.run ~plans ~budget
                  ~trial_seed:(cfg.base_seed + (t * 3571))
                  fz prog ~seeds:s.seeds)
          in
          Hashtbl.replace cells (name, fz.name) runs)
        fuzzers)
    subjects;
  cells

let bugs_of runs =
  Fuzz.Stats.Bug_set.cardinal
    (List.fold_left
       (fun acc (r : Fuzz.Strategy.run_result) ->
         Fuzz.Stats.Bug_set.union acc (Fuzz.Stats.bug_set (Fuzz.Triage.bugs r.triage)))
       Fuzz.Stats.Bug_set.empty runs)

let queue_of runs =
  Fuzz.Stats.median_int
    (List.map (fun (r : Fuzz.Strategy.run_result) -> r.queue_size) runs)

(** Sensitivity ladder: block / edge / 2-gram / 4-gram / path. *)
let sensitivity_ladder (cfg : Config.t) : string =
  let subjects = [ "gdk"; "jq"; "mp3gain"; "tiffsplit" ] in
  let fuzzers =
    [
      Fuzz.Strategy.block;
      Fuzz.Strategy.pcguard;
      Fuzz.Strategy.ngram 2;
      Fuzz.Strategy.ngram 4;
      Fuzz.Strategy.path;
    ]
  in
  let budget = max 1000 (cfg.budget / 2) and trials = max 1 (cfg.trials - 2) in
  let cells = run_set cfg ~budget ~trials subjects fuzzers in
  let rows =
    List.map
      (fun s ->
        s
        :: List.concat_map
             (fun (fz : Fuzz.Strategy.fuzzer) ->
               let runs = Hashtbl.find cells (s, fz.name) in
               [ Render.i (bugs_of runs); Render.f1 (queue_of runs) ])
             fuzzers)
      subjects
  in
  Render.table
    ~title:
      (Printf.sprintf
         "Ablation A1: feedback sensitivity ladder — bugs / median queue \
          (%d execs, %d trials)"
         budget trials)
    ~header:
      [
        "Benchmark"; "block"; "q"; "edge"; "q"; "ngram2"; "q"; "ngram4"; "q";
        "path"; "q";
      ]
    ~rows

(** Culling criterion: preserve edges vs preserve paths vs random trim. *)
let culling_criterion (cfg : Config.t) : string =
  let subjects = [ "gdk"; "pdftotext"; "infotocap" ] in
  let fuzzers =
    [
      Fuzz.Strategy.cull ~rounds:cfg.cull_rounds ();
      Fuzz.Strategy.cull_p ~rounds:cfg.cull_rounds ();
      Fuzz.Strategy.cull_r ~rounds:cfg.cull_rounds ();
    ]
  in
  let budget = max 1000 (cfg.budget / 2) and trials = max 1 (cfg.trials - 2) in
  let cells = run_set cfg ~budget ~trials subjects fuzzers in
  let rows =
    List.map
      (fun s ->
        s
        :: List.concat_map
             (fun (fz : Fuzz.Strategy.fuzzer) ->
               let runs = Hashtbl.find cells (s, fz.name) in
               [ Render.i (bugs_of runs); Render.f1 (queue_of runs) ])
             fuzzers)
      subjects
  in
  Render.table
    ~title:
      (Printf.sprintf
         "Ablation A2: culling criterion (edges vs paths vs random) — bugs \
          / median queue (%d execs, %d trials)"
         budget trials)
    ~header:[ "Benchmark"; "cull"; "q"; "cull_p"; "q"; "cull_r"; "q" ]
    ~rows

(** Round-count sensitivity for the culling driver. *)
let culling_rounds (cfg : Config.t) : string =
  let subjects = [ "gdk"; "pdftotext" ] in
  let rounds_options = [ 2; 4; 8 ] in
  let budget = max 1000 (cfg.budget / 2) and trials = max 1 (cfg.trials - 2) in
  let fuzzers =
    List.map
      (fun r ->
        { (Fuzz.Strategy.cull ~rounds:r ()) with name = Printf.sprintf "cull%d" r })
      rounds_options
  in
  let cells = run_set cfg ~budget ~trials subjects fuzzers in
  let rows =
    List.map
      (fun s ->
        s
        :: List.concat_map
             (fun (fz : Fuzz.Strategy.fuzzer) ->
               let runs = Hashtbl.find cells (s, fz.name) in
               [ Render.i (bugs_of runs); Render.f1 (queue_of runs) ])
             fuzzers)
      subjects
  in
  Render.table
    ~title:
      (Printf.sprintf
         "Ablation A3: culling round count — bugs / median queue (%d execs, \
          %d trials)"
         budget trials)
    ~header:[ "Benchmark"; "2 rounds"; "q"; "4 rounds"; "q"; "8 rounds"; "q" ]
    ~rows

let all (cfg : Config.t) : string =
  String.concat "\n"
    [ sensitivity_ladder cfg; culling_criterion cfg; culling_rounds cfg ]
