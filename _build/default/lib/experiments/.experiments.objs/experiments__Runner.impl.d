lib/experiments/runner.ml: Config Fuzz Hashtbl List Option Pathcov Printf String Subjects
