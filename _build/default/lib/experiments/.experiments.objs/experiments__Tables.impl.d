lib/experiments/tables.ml: Array Buffer Bug_set Fmt Fuzz Hashtbl List Minic Option Pathcov Printf Render Runner String Subjects Sys Vm
