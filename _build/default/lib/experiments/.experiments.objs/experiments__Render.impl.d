lib/experiments/render.ml: Array Buffer Float List Printf String
