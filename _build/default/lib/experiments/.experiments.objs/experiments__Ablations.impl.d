lib/experiments/ablations.ml: Config Fuzz Hashtbl List Pathcov Printf Render String Subjects
