lib/experiments/config.ml: Fmt Sys
