(** Plain-text table rendering for the experiment reports. *)

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let pad_left width s =
  let n = String.length s in
  if n >= width then s else String.make (width - n) ' ' ^ s

(** Render a table: first column left-aligned, the rest right-aligned. *)
let table ~title ~header ~rows : string =
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    (header :: rows);
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun i cell ->
           if i = 0 then pad widths.(i) cell else pad_left widths.(i) cell)
         row)
  in
  let sep = String.make (String.length (render_row header)) '-' in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "\n%s\n%s\n" title sep);
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let f1 v = if Float.is_nan v then "-" else Printf.sprintf "%.1f" v
let f2 v = if Float.is_nan v then "-" else Printf.sprintf "%.2f" v
let i = string_of_int
