(** Experiment runner: executes the (subject x fuzzer x trial) matrix once
    and caches the per-run results; every table and figure generator then
    aggregates from the same matrix, exactly as the paper derives Tables
    II/III/IV/VI and Figure 3 from one set of campaigns. *)

type cell = {
  subject : Subjects.Subject.t;
  fuzzer : Fuzz.Strategy.fuzzer;
  runs : Fuzz.Strategy.run_result list;  (** one per trial *)
}

type matrix = {
  config : Config.t;
  cells : (string * string, cell) Hashtbl.t;  (** (subject, fuzzer) *)
  fuzzers : Fuzz.Strategy.fuzzer list;
  subjects : Subjects.Subject.t list;
}

(** The evaluated fuzzer configurations (§V), including the appendix ones. *)
let standard_fuzzers (cfg : Config.t) : Fuzz.Strategy.fuzzer list =
  [
    Fuzz.Strategy.path;
    Fuzz.Strategy.pcguard;
    Fuzz.Strategy.cull ~rounds:cfg.cull_rounds ();
    Fuzz.Strategy.opp;
    Fuzz.Strategy.cull_r ~rounds:cfg.cull_rounds ();
    Fuzz.Strategy.pathafl;
    Fuzz.Strategy.afl;
  ]

let run_cell (cfg : Config.t) (subject : Subjects.Subject.t)
    (fuzzer : Fuzz.Strategy.fuzzer) : cell =
  let prog = Subjects.Subject.program subject in
  let plans = Pathcov.Ball_larus.of_program prog in
  let runs =
    List.init cfg.trials (fun trial ->
        Fuzz.Strategy.run ~plans ~budget:cfg.budget
          ~trial_seed:(cfg.base_seed + (trial * 7919))
          fuzzer prog ~seeds:subject.seeds)
  in
  { subject; fuzzer; runs }

(** Run the full matrix. [quiet] suppresses progress on stderr. *)
let run ?(quiet = false) ?fuzzers ?subjects (cfg : Config.t) : matrix =
  let fuzzers = Option.value fuzzers ~default:(standard_fuzzers cfg) in
  let subjects = Option.value subjects ~default:Subjects.Registry.all in
  let cells = Hashtbl.create 128 in
  let total = List.length fuzzers * List.length subjects in
  let done_ = ref 0 in
  List.iter
    (fun subject ->
      List.iter
        (fun (fuzzer : Fuzz.Strategy.fuzzer) ->
          let cell = run_cell cfg subject fuzzer in
          Hashtbl.replace cells (subject.Subjects.Subject.name, fuzzer.name) cell;
          incr done_;
          if not quiet then
            Printf.eprintf "[matrix %3d/%d] %-10s %-8s bugs/trial: %s\n%!" !done_
              total subject.Subjects.Subject.name fuzzer.name
              (String.concat ","
                 (List.map
                    (fun (r : Fuzz.Strategy.run_result) ->
                      string_of_int (Fuzz.Triage.unique_bugs r.triage))
                    cell.runs)))
        fuzzers)
    subjects;
  { config = cfg; cells; fuzzers; subjects }

let cell (m : matrix) ~subject ~fuzzer : cell =
  match Hashtbl.find_opt m.cells (subject, fuzzer) with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Runner.cell: no cell (%s, %s)" subject fuzzer)

(* ------------------------------------------------------------------ *)
(* Per-cell aggregations *)

(** Union of ground-truth bugs over all trials (the "cumulative" columns). *)
let cumulative_bugs (c : cell) : Fuzz.Stats.Bug_set.t =
  List.fold_left
    (fun acc (r : Fuzz.Strategy.run_result) ->
      Fuzz.Stats.Bug_set.union acc (Fuzz.Stats.bug_set (Fuzz.Triage.bugs r.triage)))
    Fuzz.Stats.Bug_set.empty c.runs

(** Count of distinct stack-hash unique crashes over all trials. *)
let cumulative_unique_crashes (c : cell) : int =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (r : Fuzz.Strategy.run_result) ->
      Hashtbl.iter (fun h _ -> Hashtbl.replace tbl h ()) r.triage.by_stack)
    c.runs;
  Hashtbl.length tbl

let median_bugs (c : cell) : float =
  Fuzz.Stats.median_int
    (List.map (fun (r : Fuzz.Strategy.run_result) -> Fuzz.Triage.unique_bugs r.triage) c.runs)

let median_queue (c : cell) : float =
  Fuzz.Stats.median_int
    (List.map (fun (r : Fuzz.Strategy.run_result) -> r.queue_size) c.runs)

let total_crashes (c : cell) : int =
  List.fold_left
    (fun acc (r : Fuzz.Strategy.run_result) -> acc + r.triage.total_crashes)
    0 c.runs

let afl_unique_crashes (c : cell) : int =
  List.fold_left
    (fun acc (r : Fuzz.Strategy.run_result) ->
      acc + Fuzz.Triage.afl_unique_crashes r.triage)
    0 c.runs

(** Cumulative edge coverage: union over trials of afl-showmap on the final
    queue plus the seeds (Table IV's measurement). *)
let cumulative_edges (c : cell) : Fuzz.Measure.Int_set.t =
  let prog = Subjects.Subject.program c.subject in
  List.fold_left
    (fun acc (r : Fuzz.Strategy.run_result) ->
      Fuzz.Measure.Int_set.union acc
        (Fuzz.Measure.edge_union prog (c.subject.seeds @ r.final_queue)))
    Fuzz.Measure.Int_set.empty c.runs

(** Per-trial bug sets (medians and per-run set algebra, Table VI). *)
let per_trial_bugs (c : cell) : Fuzz.Stats.Bug_set.t list =
  List.map
    (fun (r : Fuzz.Strategy.run_result) ->
      Fuzz.Stats.bug_set (Fuzz.Triage.bugs r.triage))
    c.runs
