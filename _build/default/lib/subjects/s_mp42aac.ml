(** mp42aac (Bento4) stand-in: MP4 box parser extracting an AAC track.
    Nested box recursion (moov/trak/mdia/stsd), sample table handling and
    an extraction loop — 7–8 bugs in the paper, several path-dependent. *)

let source =
  {|
// mp42aac: ISO-BMFF box walker: [size32 fourcc payload...], big-endian.
global track_count;
global aac_found;
global sample_count;
global descr_len;
global depth;

fn u32(p) {
  return (((in(p) * 256 + in(p + 1)) * 256 + in(p + 2)) * 256) + in(p + 3);
}

fn fourcc(p, a, c, d, e) {
  return in(p) == a && in(p + 1) == c && in(p + 2) == d && in(p + 3) == e;
}

fn parse_stsd(p, end_) {
  // sample description: count, then entries with a format fourcc
  var n = u32(p);
  check(n <= 4, 191);                   // sample-description overflow
  var q = p + 4;
  var i = 0;
  while (i < n && q + 8 <= end_) {
    var esize = u32(q);
    if (fourcc(q + 4, 109, 112, 52, 97)) {
      // "mp4a"
      aac_found = 1;
      descr_len = u32(q + 8);
      if (descr_len > esize && track_count > 1) {
        // path-dependent: descriptor longer than entry, multi-track only
        bug(192);
      }
    }
    if (esize <= 0) {
      bug(193);                         // zero-size entry stalls scan
    }
    q = q + esize;
    i = i + 1;
  }
  return n;
}

fn parse_stsz(p) {
  sample_count = u32(p + 4);
  check(sample_count >= 0 && sample_count < 1024, 194);
  return sample_count;
}

fn parse_children(p, end_) {
  var q = p;
  while (q + 8 <= end_) {
    var adv = parse_box(q, end_);
    if (adv <= 0) {
      return -1;
    }
    q = q + adv;
  }
  return 0;
}

fn parse_box(p, end_) {
  var size = u32(p);
  if (size < 8 || p + size > end_) {
    return -1;
  }
  depth = depth + 1;
  check(depth <= 6, 195);               // unbounded container nesting
  if (fourcc(p + 4, 109, 111, 111, 118) || fourcc(p + 4, 116, 114, 97, 107)
      || fourcc(p + 4, 109, 100, 105, 97) || fourcc(p + 4, 115, 116, 98, 108)) {
    // moov / trak / mdia / stbl are containers
    if (fourcc(p + 4, 116, 114, 97, 107)) {
      track_count = track_count + 1;
    }
    parse_children(p + 8, p + size);
  } else {
    if (fourcc(p + 4, 115, 116, 115, 100)) {
      parse_stsd(p + 8, p + size);      // stsd
    }
    if (fourcc(p + 4, 115, 116, 115, 122)) {
      parse_stsz(p + 8);                // stsz
    }
    if (fourcc(p + 4, 109, 100, 97, 116)) {
      // mdat: extraction happens later
      if (aac_found == 1 && sample_count == 0) {
        bug(196);                       // extraction with empty sample table
      }
    }
  }
  depth = depth - 1;
  return size;
}

fn main() {
  track_count = 0;
  aac_found = 0;
  sample_count = 0;
  descr_len = 0;
  depth = 0;
  if (len() < 8) {
    return 1;
  }
  parse_children(0, len());
  return aac_found;
}
|}

let b = Subject.b

let u32be v =
  b [ (v lsr 24) land 255; (v lsr 16) land 255; (v lsr 8) land 255; v land 255 ]

let box fourcc payload = u32be (8 + String.length payload) ^ fourcc ^ payload

(* an stsd with one mp4a entry; the entry embeds a descriptor length *)
let stsd_mp4a ?(descr = 4) ?(esize = 16) () =
  u32be 1 ^ u32be esize ^ "mp4a" ^ u32be descr ^ String.make (max 0 (esize - 12)) '\000'

let subject : Subject.t =
  {
    name = "mp42aac";
    description = "MP4 box walker extracting an AAC track";
    source;
    seeds =
      [
        box "moov" (box "trak" (box "mdia" (box "stbl" (box "stsd" (stsd_mp4a ())))));
        box "moov" (box "trak" (box "stbl" (box "stsz" (u32be 0 ^ u32be 12))))
        ^ box "mdat" "xx";
        box "ftyp" "isom";
      ];
    bugs =
      [
        {
          id = 191;
          summary = "sample-description count overflow";
          bug_class = Subject.Shallow;
          witness = box "stsd" (u32be 9);
        };
        {
          id = 192;
          summary = "descriptor length beyond entry, multi-track files only";
          bug_class = Subject.Path_dependent;
          witness =
            box "moov"
              (box "trak" (box "mdia" "")
              ^ box "trak" (box "stbl" (box "stsd" (stsd_mp4a ~descr:999 ()))));
        };
        {
          id = 193;
          summary = "zero-size sample entry stalls the scan";
          bug_class = Subject.Magic;
          witness = box "stsd" (u32be 1 ^ u32be 0 ^ "xxxx" ^ u32be 0);
        };
        {
          id = 194;
          summary = "unchecked sample count allocation";
          bug_class = Subject.Shallow;
          witness = box "stsz" (u32be 0 ^ u32be 5000);
        };
        {
          id = 195;
          summary = "unbounded container nesting";
          bug_class = Subject.Deep;
          witness =
            box "moov"
              (box "trak"
                 (box "mdia"
                    (box "stbl"
                       (box "moov" (box "trak" (box "mdia" (box "stbl" "")))))));
        };
        {
          id = 196;
          summary = "extraction with AAC track but empty sample table";
          bug_class = Subject.Path_dependent;
          witness =
            box "moov"
              (box "trak"
                 (box "mdia" (box "stbl" (box "stsd" (stsd_mp4a ())))))
            ^ box "mdat" "xx";
        };
      ];
  }
