(** sqlite3 stand-in: SQL statement tokenizer + statement compiler for a
    SELECT/INSERT/CREATE subset. Keyword-gated branches reward cmplog-style
    byte solving (pcguard leads here in the paper, 9 vs 5 bugs) while the
    expression compiler holds a few path-dependent defects. *)

let source =
  {|
// sqlite3: keyword tokenizer + statement compiler.
global ncols;
global nvals;
global where_depth;
global select_nested;
global reg_top;

fn lower(c) {
  if (c >= 65 && c <= 90) { return c + 32; }
  return c;
}

fn kw(p, a, b2, c2) {
  // 3-letter keyword prefix match, case-insensitive
  return lower(in(p)) == a && lower(in(p + 1)) == b2 && lower(in(p + 2)) == c2;
}

fn skip_ws(p) {
  while (in(p) == 32 || in(p) == 9 || in(p) == 10) {
    p = p + 1;
  }
  return p;
}

fn skip_word(p) {
  while ((lower(in(p)) >= 97 && lower(in(p)) <= 122) || in(p) == 95
         || (in(p) >= 48 && in(p) <= 57)) {
    p = p + 1;
  }
  return p;
}

fn alloc_reg() {
  reg_top = reg_top + 1;
  check(reg_top <= 10, 271);            // register file overflow
  return reg_top;
}

fn compile_expr(p, depth) {
  // expr := term (op expr)?, term := word | number | '(' expr ')'
  check(depth <= 9, 273);               // expression tree too deep
  p = skip_ws(p);
  if (in(p) == 40) {
    where_depth = where_depth + 1;
    var q = p + 1;
    if (kw(q, 115, 101, 108) == 1) {
      // nested (SELECT ...)
      select_nested = select_nested + 1;
      if (select_nested >= 2 && ncols > 2) {
        // correlated double-nested subquery with wide column list:
        // name resolution walks a stale frame (path-dependent)
        bug(272);
      }
      q = skip_word(q);
    }
    p = compile_expr(q, depth + 1);
    p = skip_ws(p);
    if (in(p) == 41) {
      p = p + 1;
    }
  } else {
    alloc_reg();
    p = skip_word(p);
  }
  p = skip_ws(p);
  var op = in(p);
  if (op == 61 || op == 60 || op == 62 || op == 43 || op == 45) {
    p = compile_expr(p + 1, depth + 1);
  }
  return p;
}

fn compile_select(p) {
  // SELECT col[, col]* FROM word [WHERE expr]
  p = skip_ws(p);
  ncols = 1;
  alloc_reg();
  p = skip_word(p);
  while (in(p) == 44) {
    ncols = ncols + 1;
    check(ncols <= 8, 274);             // column list overflow
    alloc_reg();
    p = skip_word(skip_ws(p + 1));
  }
  p = skip_ws(p);
  if (kw(p, 102, 114, 111) == 1) {
    p = skip_word(p);
    p = skip_ws(p);
    p = skip_word(p);
  }
  p = skip_ws(p);
  if (kw(p, 119, 104, 101) == 1) {
    p = skip_word(p);
    compile_expr(p, 0);
  }
  return p;
}

fn compile_insert(p) {
  // INSERT word VALUES ( v[, v]* )
  p = skip_word(skip_ws(p));
  p = skip_ws(p);
  if (kw(p, 118, 97, 108) == 1) {
    p = skip_word(p);
    p = skip_ws(p);
    if (in(p) == 40) {
      nvals = 1;
      p = skip_word(skip_ws(p + 1));
      while (in(p) == 44) {
        nvals = nvals + 1;
        p = skip_word(skip_ws(p + 1));
      }
      if (ncols > 0 && nvals != ncols && ncols != 1) {
        // INSERT after a SELECT primed the column count: mismatch uses
        // the stale count (path-dependent across statements)
        bug(275);
      }
    }
  }
  return p;
}

fn compile_create(p) {
  p = skip_ws(p);
  // CREATE TABLE word ( cols )
  if (kw(p, 116, 97, 98) == 1) {
    p = skip_word(p);
    p = skip_ws(p);
    p = skip_word(p);
    p = skip_ws(p);
    if (in(p) == 40) {
      var n = 0;
      p = p + 1;
      while (in(p) != 41 && in(p) != -1) {
        if (in(p) == 44) {
          n = n + 1;
        }
        p = p + 1;
      }
      check(n <= 16, 276);              // too many table columns
    }
  }
  return p;
}

fn main() {
  ncols = 0;
  nvals = 0;
  where_depth = 0;
  select_nested = 0;
  reg_top = 0;
  var p = 0;
  var stmts = 0;
  while (in(p) != -1 && stmts < 6) {
    p = skip_ws(p);
    if (kw(p, 115, 101, 108) == 1) {
      p = compile_select(skip_word(p));
    } else {
      if (kw(p, 105, 110, 115) == 1) {
        p = compile_insert(skip_word(p));
      } else {
        if (kw(p, 99, 114, 101) == 1) {
          p = compile_create(skip_word(p));
        } else {
          p = skip_word(p);
          if (p == skip_ws(p) && in(p) != -1 && in(p) != 59) {
            p = p + 1;                  // punctuation
          }
        }
      }
    }
    p = skip_ws(p);
    if (in(p) == 59) {
      p = p + 1;
    }
    stmts = stmts + 1;
  }
  return reg_top;
}
|}

let subject : Subject.t =
  {
    name = "sqlite3";
    description = "SQL tokenizer and statement compiler (SELECT/INSERT/CREATE)";
    source;
    seeds =
      [
        "SELECT a, b FROM t WHERE x = 1;";
        "INSERT t VALUES (1, 2);";
        "CREATE TABLE t (a, b, c); SELECT a FROM t;";
      ];
    bugs =
      [
        {
          id = 271;
          summary = "expression register file overflow";
          bug_class = Subject.Loop_accumulation;
          witness = "SELECT a,b,c,d,e,f,g,h FROM t WHERE i+j+k";
        };
        {
          id = 272;
          summary = "stale frame in correlated double-nested subquery";
          bug_class = Subject.Path_dependent;
          witness = "SELECT a, b, c FROM t WHERE ((select x)=(select y))";
        };
        {
          id = 273;
          summary = "expression tree depth overflow";
          bug_class = Subject.Deep;
          witness = "SELECT a FROM t WHERE ((((((((((a))))))))))";
        };
        {
          id = 274;
          summary = "column list overflow";
          bug_class = Subject.Shallow;
          witness = "SELECT a,b,c,d,e,f,g,h,i FROM t";
        };
        {
          id = 275;
          summary = "stale column count reused across statements";
          bug_class = Subject.Path_dependent;
          witness = "SELECT a, b FROM t; INSERT t VALUES (1,2,3);";
        };
        {
          id = 276;
          summary = "CREATE TABLE column-count overflow";
          bug_class = Subject.Shallow;
          witness = "CREATE TABLE t (a,b,c,d,e,f,g,h,i,j,k,l,m,n,o,p,q,r)";
        };
      ];
  }
