(** gdk-pixbuf stand-in: an image loader with palette handling and an RLE
    decoder. The RLE state machine has per-byte branching inside loops —
    many intra-procedural acyclic paths per input — making this one of the
    queue-explosion subjects, and it carries a rich bug population
    (the paper's gdk row has 8–11 bugs across fuzzers). *)

let source =
  {|
// gdk: header + palette + RLE pixel decoder.
global palette[16];
global palette_size;
global pixels[256];
global written;
global transparent_idx;

fn read_header(p) {
  // "GP" w h flags palsize
  if (in(p) != 71 || in(p + 1) != 80) {
    return -1;
  }
  var w = in(p + 2);
  var h = in(p + 3);
  if (w <= 0 || h <= 0) {
    return -1;
  }
  check(w * h <= 256, 151);            // pixel buffer overflow by dimensions
  return p + 6;
}

fn read_palette(p, n) {
  var i = 0;
  check(n <= 16, 152);                 // palette overflow
  while (i < n) {
    palette[i] = in(p + i);
    i = i + 1;
  }
  palette_size = n;
  return p + n;
}

// per-pixel statistics: six independent decisions per activation
fn pixel_stats(v) {
  var w = 0;
  if ((v & 1) != 0) { w = w + 1; }
  if ((v & 2) != 0) { w = w + 2; }
  if ((v & 4) != 0) { w = w + 4; }
  if ((v & 8) != 0) { w = w + 8; }
  if ((v & 16) != 0) { w = w + 16; }
  if (v > 32) { w = w + 32; }
  return w;
}

fn emit(v) {
  check(written < 256, 153);           // RLE run overflows pixel buffer
  pixel_stats(v);
  pixels[written] = v;
  written = written + 1;
  return 0;
}

fn lookup(idx) {
  if (idx == transparent_idx || idx < 0) {
    return 0;
  }
  check(idx < palette_size, 154);      // palette index out of range
  return palette[idx];
}

fn decode_rle(p, limit) {
  // opcodes: 0x00 n v = run, 0x01 n = literal run, 0x02 = set transparent,
  // 0x03 d = delta repeat of last pixel
  var last = 0;
  while (in(p) != -1 && written < limit) {
    var op = in(p);
    if (op == 0) {
      var n = in(p + 1);
      var v = lookup(in(p + 2));
      var i = 0;
      while (i < n) {
        emit(v);
        i = i + 1;
      }
      last = v;
      p = p + 3;
    } else {
      if (op == 1) {
        var n2 = in(p + 1);
        var j = 0;
        while (j < n2) {
          emit(lookup(in(p + 2 + j)));
          j = j + 1;
        }
        if (written > 0) {
          last = pixels[written - 1];
        }
        p = p + 2 + n2;
      } else {
        if (op == 2) {
          transparent_idx = in(p + 1);
          if (transparent_idx >= palette_size && written > 0) {
            // path-dependent: transparent index set after pixels emitted
            bug(155);
          }
          p = p + 2;
        } else {
          if (op == 3) {
            var d = in(p + 1);
            emit(last + d);
            if (last + d > 255 && transparent_idx > 0) {
              bug(156);               // delta overflow with transparency on
            }
            p = p + 2;
          } else {
            p = p + 1;               // unknown opcode skipped
          }
        }
      }
    }
  }
  return written;
}

// post-decode audit: fatal only for one configuration of counters
fn summary_check(w, h) {
  var risk = 0;
  if (written >= 6) { risk = risk + 1; }
  if (palette_size % 3 == 1) { risk = risk + 2; }
  if (transparent_idx == 2) { risk = risk + 4; }
  if ((written & 7) == 5) { risk = risk + 8; }
  check(risk != 15, 157);
  return risk;
}

fn main() {
  palette_size = 0;
  written = 0;
  transparent_idx = -1;
  var p = read_header(0);
  if (p < 0) {
    return 1;
  }
  var npal = in(5);
  p = read_palette(p, npal);
  var w = in(2);
  var h = in(3);
  decode_rle(p, w * h);
  summary_check(w, h);
  return written;
}
|}

let b = Subject.b

(* header: "GP" w h flags palsize, then palette bytes, then RLE stream *)
let img ?(w = 4) ?(h = 4) ?(flags = 0) ~pal rle =
  "GP" ^ b [ w; h; flags; List.length pal ] ^ b pal ^ rle

let subject : Subject.t =
  {
    name = "gdk";
    description = "paletted image loader with RLE decoder";
    source;
    seeds =
      [
        img ~pal:[ 10; 20; 30 ] (b [ 0; 4; 1; 1; 2; 0; 2 ]);
        img ~w:2 ~h:2 ~pal:[ 1; 2 ] (b [ 1; 2; 0; 1 ]);
        img ~pal:[ 5 ] (b [ 2; 0; 0; 3; 0 ]);
      ];
    bugs =
      [
        {
          id = 151;
          summary = "width*height exceeds pixel buffer";
          bug_class = Subject.Shallow;
          witness = "GP" ^ b [ 32; 32; 0; 0 ];
        };
        {
          id = 152;
          summary = "palette size exceeds palette buffer";
          bug_class = Subject.Shallow;
          witness = "GP" ^ b [ 2; 2; 0; 17 ];
        };
        {
          id = 153;
          summary = "RLE run crosses pixel buffer end";
          bug_class = Subject.Loop_accumulation;
          (* limit w*h=16 stops the outer loop but a single long literal run
             keeps emitting past 256: w=16,h=16 limit 256 ... use runs *)
          witness =
            img ~w:16 ~h:16 ~pal:[ 1 ]
              (String.concat ""
                 (List.init 2 (fun _ -> Subject.b [ 0; 255; 0 ]))
              ^ Subject.b [ 0; 255; 0 ]);
          (* 3 runs of 255 -> written hits 256 mid-run *)
        };
        {
          id = 154;
          summary = "palette index beyond palette size";
          bug_class = Subject.Shallow;
          witness = img ~pal:[ 1; 2 ] (b [ 0; 1; 9 ]);
        };
        {
          id = 155;
          summary = "transparent index changed after pixels emitted";
          bug_class = Subject.Path_dependent;
          witness = img ~pal:[ 1; 2 ] (b [ 0; 1; 0; 2; 7 ]);
        };
        {
          id = 157;
          summary = "fatal counter configuration in post-decode audit";
          bug_class = Subject.Path_dependent;
          witness = img ~w:4 ~h:4 ~pal:[ 3; 4; 5; 6 ] (b [ 2; 2; 0; 13; 1 ]);
        };
        {
          id = 156;
          summary = "delta opcode overflows pixel value with transparency";
          bug_class = Subject.Path_dependent;
          witness = img ~pal:[ 1; 2 ] (b [ 2; 1; 0; 1; 0; 3; 255 ]);
        };
      ];
  }
