(** imginfo (JasPer) stand-in: image format sniffing across three codecs
    (PNM, BMP-like, RAS-like) with per-codec header validation. *)

let source =
  {|
// imginfo: format sniffer + per-format header parsers.
global components;

fn u16(p) {
  return (in(p) * 256) + in(p + 1);
}

fn u32(p) {
  return (u16(p) * 65536) + u16(p + 2);
}

fn parse_pnm(p) {
  // "P" digit, whitespace, width, height, maxval
  var kind = in(p + 1) - 48;
  if (kind < 1 || kind > 6) {
    return 1;
  }
  var q = p + 2;
  while (in(q) == 32 || in(q) == 10) { q = q + 1; }
  var w = 0;
  while (in(q) >= 48 && in(q) <= 57) {
    w = (w * 10) + (in(q) - 48);
    q = q + 1;
  }
  while (in(q) == 32 || in(q) == 10) { q = q + 1; }
  var h = 0;
  while (in(q) >= 48 && in(q) <= 57) {
    h = (h * 10) + (in(q) - 48);
    q = q + 1;
  }
  check(w * h < 1000000, 141);          // pixel-count overflow
  if (kind >= 5 && w > 0 && h == 0) {
    bug(142);                           // raw PNM with zero height
  }
  return 0;
}

fn parse_bmp(p) {
  var size = u32(p + 2);
  var w = u16(p + 6);
  var h = u16(p + 8);
  var bpp = in(p + 10);
  if (bpp != 1 && bpp != 8 && bpp != 24) {
    return 1;
  }
  components = bpp / 8;
  if (components == 0 && w * h > 64) {
    // 1-bit image with large dimensions: row stride rounds to zero
    bug(143);
  }
  return 0;
}

fn parse_ras(p) {
  var depth = in(p + 4);
  var maplen = in(p + 5);
  if (depth == 24 && maplen > 0) {
    // colormap on truecolor raster
    check(maplen <= 8, 144);
  }
  return 0;
}

fn main() {
  components = 0;
  if (in(0) == 80) {
    return parse_pnm(0);                // 'P'
  }
  if (in(0) == 66 && in(1) == 77) {
    return parse_bmp(0);                // "BM"
  }
  if (in(0) == 89 && in(1) == 106) {
    return parse_ras(0);                // "Yj"
  }
  return 2;
}
|}

let b = Subject.b

let subject : Subject.t =
  {
    name = "imginfo";
    description = "image format sniffer (PNM / BMP-like / RAS-like)";
    source;
    seeds =
      [
        "P5 16 16 255 ";
        "BM" ^ b [ 0; 0; 0; 64; 0; 16; 0; 16; 8 ];
        "Yj" ^ b [ 0; 0; 8; 0 ];
      ];
    bugs =
      [
        {
          id = 141;
          summary = "pixel-count multiplication overflow in PNM";
          bug_class = Subject.Shallow;
          witness = "P5 9999 9999 ";
        };
        {
          id = 142;
          summary = "raw PNM with zero height";
          bug_class = Subject.Shallow;
          witness = "P6 4 0 ";
        };
        {
          id = 143;
          summary = "1-bit BMP row stride rounds to zero";
          bug_class = Subject.Magic;
          witness = "BM" ^ b [ 0; 0; 0; 0; 0; 16; 0; 16; 1 ];
        };
        {
          id = 144;
          summary = "oversized colormap on truecolor raster";
          bug_class = Subject.Magic;
          witness = "Yj" ^ b [ 0; 0; 24; 9 ];
        };
      ];
  }
