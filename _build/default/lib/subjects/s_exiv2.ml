(** exiv2 stand-in: a TIFF/EXIF metadata parser (C++-heavy in UNIFUZZ,
    8 bugs in the paper's Table II). Byte-order handling, IFD entry
    decoding with type/count validation, and a sub-IFD recursion. *)

let source =
  {|
// exiv2: TIFF byte-order header + IFD walker with sub-IFD recursion.
global big_endian;
global ifds_visited;
global ratios_seen;
global last_tag;

fn u16(p) {
  if (big_endian == 1) {
    return (in(p) * 256) + in(p + 1);
  }
  return in(p) + (in(p + 1) * 256);
}

fn u32(p) {
  if (big_endian == 1) {
    return (u16(p) * 65536) + u16(p + 2);
  }
  return u16(p) + (u16(p + 2) * 65536);
}

fn type_size(t) {
  if (t == 1 || t == 2) { return 1; }
  if (t == 3) { return 2; }
  if (t == 4) { return 4; }
  if (t == 5) { return 8; }
  return 0;
}

fn parse_entry(p) {
  var tag = in(p) + (in(p + 1) * 256);
  if (big_endian == 1) {
    tag = (in(p) * 256) + in(p + 1);
  }
  var typ = u16(p + 2);
  var count = u32(p + 4);
  var ts = type_size(typ);
  if (ts == 0) {
    return 0;                           // unknown type, skipped
  }
  var bytes = ts * count;
  check(bytes >= 0 && bytes < 65536, 171);  // count * size overflow
  if (typ == 5) {
    ratios_seen = ratios_seen + 1;
    var denom = u32(p + 8);
    if (denom == 0 && ratios_seen > 1) {
      // zero denominator in a second RATIONAL: the first parse primes a
      // cached conversion state (path-dependent)
      bug(172);
    }
  }
  if (tag == 34665) {
    // EXIF sub-IFD pointer
    var off = u32(p + 8);
    if (off > 0 && off < len()) {
      parse_ifd(off);
    }
  }
  if (tag < last_tag && typ == 2 && big_endian == 1) {
    // unsorted ASCII tag on big-endian: wrong binary-search assumption
    bug(173);
  }
  last_tag = tag;
  return 1;
}

fn parse_ifd(p) {
  ifds_visited = ifds_visited + 1;
  check(ifds_visited <= 4, 174);        // unbounded sub-IFD recursion
  var n = u16(p);
  if (n < 0 || n > 64) {
    return -1;
  }
  var i = 0;
  while (i < n) {
    parse_entry(p + 2 + (i * 12));
    i = i + 1;
  }
  var next = u32(p + 2 + (n * 12));
  if (next > 0 && next < len() && next != p) {
    parse_ifd(next);
  }
  return n;
}

fn main() {
  big_endian = 0;
  ifds_visited = 0;
  ratios_seen = 0;
  last_tag = 0;
  // "II*\0" or "MM\0*"
  if (in(0) == 73 && in(1) == 73 && in(2) == 42) {
    big_endian = 0;
  } else {
    if (in(0) == 77 && in(1) == 77 && in(3) == 42) {
      big_endian = 1;
    } else {
      return 1;
    }
  }
  var first = u32(4);
  if (first <= 0 || first >= len()) {
    return 2;
  }
  parse_ifd(first);
  return 0;
}
|}

let b = Subject.b
let u16le = Subject.u16le
let u32le = Subject.u32le

(* little-endian TIFF with one IFD at offset 8 *)
let tiff_le entries =
  let n = List.length entries in
  "II*" ^ b [ 0 ] ^ u32le 8 ^ u16le n
  ^ String.concat ""
      (List.map
         (fun (tag, typ, count, value) -> u16le tag ^ u16le typ ^ u32le count ^ u32le value)
         entries)
  ^ u32le 0

let u16be v = b [ (v lsr 8) land 255; v land 255 ]
let u32be v = b [ (v lsr 24) land 255; (v lsr 16) land 255; (v lsr 8) land 255; v land 255 ]

let tiff_be entries =
  let n = List.length entries in
  "MM" ^ b [ 0; 42 ] ^ u32be 8 ^ u16be n
  ^ String.concat ""
      (List.map
         (fun (tag, typ, count, value) -> u16be tag ^ u16be typ ^ u32be count ^ u32be value)
         entries)
  ^ u32be 0

let subject : Subject.t =
  {
    name = "exiv2";
    description = "TIFF/EXIF IFD walker with byte-order and sub-IFD handling";
    source;
    seeds =
      [
        tiff_le [ (256, 3, 1, 64); (257, 3, 1, 64) ];
        tiff_be [ (256, 3, 1, 64); (282, 5, 1, 72) ];
        tiff_le [ (34665, 4, 1, 0) ];
      ];
    bugs =
      [
        {
          id = 171;
          summary = "type-size * count multiplication overflow";
          bug_class = Subject.Shallow;
          witness = tiff_le [ (256, 4, 70000, 0) ];
        };
        {
          id = 172;
          summary = "zero denominator in second RATIONAL entry";
          bug_class = Subject.Path_dependent;
          witness = tiff_le [ (282, 5, 1, 72); (283, 5, 1, 0) ];
        };
        {
          id = 173;
          summary = "unsorted ASCII tag breaks big-endian binary search";
          bug_class = Subject.Path_dependent;
          witness = tiff_be [ (300, 3, 1, 1); (270, 2, 4, 0) ];
        };
        {
          id = 174;
          summary = "unbounded sub-IFD recursion";
          bug_class = Subject.Deep;
          witness =
            (* IFD at 8 with one EXIF-pointer entry pointing at itself *)
            tiff_le [ (34665, 4, 1, 8) ];
        };
      ];
  }
