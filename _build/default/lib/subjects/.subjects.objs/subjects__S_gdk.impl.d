lib/subjects/s_gdk.ml: List String Subject
