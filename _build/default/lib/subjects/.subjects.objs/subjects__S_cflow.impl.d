lib/subjects/s_cflow.ml: String Subject
