lib/subjects/subject.ml: Array Char Hashtbl List Minic String Vm
