lib/subjects/s_mujs.ml: String Subject
