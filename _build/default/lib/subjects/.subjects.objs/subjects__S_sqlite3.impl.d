lib/subjects/s_sqlite3.ml: Subject
