lib/subjects/s_lame.ml: List String Subject
