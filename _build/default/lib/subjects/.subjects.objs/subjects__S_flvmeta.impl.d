lib/subjects/s_flvmeta.ml: String Subject
