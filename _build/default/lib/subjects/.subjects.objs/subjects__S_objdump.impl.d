lib/subjects/s_objdump.ml: List String Subject
