lib/subjects/s_exiv2.ml: List String Subject
