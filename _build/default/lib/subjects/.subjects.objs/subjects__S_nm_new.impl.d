lib/subjects/s_nm_new.ml: List String Subject
