lib/subjects/s_mp3gain.ml: Array String Subject
