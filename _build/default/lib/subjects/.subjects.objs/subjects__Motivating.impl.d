lib/subjects/motivating.ml: String Subject Vm
