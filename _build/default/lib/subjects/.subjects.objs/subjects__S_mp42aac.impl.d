lib/subjects/s_mp42aac.ml: String Subject
