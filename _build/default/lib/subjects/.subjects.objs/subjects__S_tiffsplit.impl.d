lib/subjects/s_tiffsplit.ml: List String Subject
