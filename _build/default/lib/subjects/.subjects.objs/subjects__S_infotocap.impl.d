lib/subjects/s_infotocap.ml: String Subject
