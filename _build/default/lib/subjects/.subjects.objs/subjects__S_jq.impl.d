lib/subjects/s_jq.ml: Subject
