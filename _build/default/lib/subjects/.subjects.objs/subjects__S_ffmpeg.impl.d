lib/subjects/s_ffmpeg.ml: List String Subject
