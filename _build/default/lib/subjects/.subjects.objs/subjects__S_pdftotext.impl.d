lib/subjects/s_pdftotext.ml: List String Subject
