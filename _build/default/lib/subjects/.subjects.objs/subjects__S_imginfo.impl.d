lib/subjects/s_imginfo.ml: Subject
