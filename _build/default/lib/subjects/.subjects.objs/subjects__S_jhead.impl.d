lib/subjects/s_jhead.ml: List String Subject
