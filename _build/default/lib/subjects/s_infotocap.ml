(** infotocap (ncurses) stand-in: terminfo source to termcap translator.
    Dense per-character branching inside nested loops (capability names,
    '%' parameterised strings, '^'/'\' escapes) gives this subject the
    largest acyclic-path population — it is the paper's most extreme
    queue-explosion case (62x in Table III, 191k queue items in Table I). *)

let source =
  {|
// infotocap: terminfo entry parser + parameterised-string translator.
global caps_seen;
global params_depth;
global out_len;
global last_delay;
global attr_mix;

// per-character attribute classifier: eight independent decisions per
// activation, so each byte value selects one of 256 acyclic paths
fn attr_class(c) {
  var w = 0;
  if ((c & 1) != 0) { w = w + 1; }
  if ((c & 2) != 0) { w = w + 2; }
  if ((c & 4) != 0) { w = w + 4; }
  if ((c & 8) != 0) { w = w + 8; }
  if ((c & 16) != 0) { w = w + 16; }
  if ((c & 32) != 0) { w = w + 32; }
  if ((c & 64) != 0) { w = w + 64; }
  if (c > 96) { w = w + 128; }
  attr_mix = (attr_mix + w) & 255;
  return w;
}

fn is_alnum(c) {
  return (c >= 97 && c <= 122) || (c >= 65 && c <= 90) || (c >= 48 && c <= 57);
}

fn emit(n) {
  out_len = out_len + n;
  check(out_len < 512, 221);            // translated string overflow
  return out_len;
}

fn parse_percent(p) {
  // %d %s %p1..%p9 %{nn} %% etc.
  var c = in(p);
  if (c == 100 || c == 115 || c == 99) {
    emit(2);
    return p + 1;
  }
  if (c == 112) {
    var digit = in(p + 1);
    check(digit >= 49 && digit <= 57, 222);  // %p must have digit 1..9
    params_depth = params_depth + 1;
    emit(4);
    return p + 2;
  }
  if (c == 123) {
    var q = p + 1;
    var v = 0;
    while (in(q) >= 48 && in(q) <= 57) {
      v = (v * 10) + (in(q) - 48);
      q = q + 1;
    }
    if (in(q) == 125) {
      emit(3);
      if (v > 255 && params_depth > 0) {
        // literal constant exceeding a byte inside parameterised context
        bug(223);
      }
      return q + 1;
    }
    return q;
  }
  if (c == 37) {
    emit(1);
    return p + 1;
  }
  emit(1);
  return p + 1;
}

fn parse_string_cap(p) {
  // translate until ',' or end
  while (in(p) != -1 && in(p) != 44) {
    var c = in(p);
    if (c == 37) {
      p = parse_percent(p + 1);
    } else {
      if (c == 94) {
        // ^X control char
        var x = in(p + 1);
        check(x >= 63, 224);            // ^ followed by non-control source
        emit(2);
        p = p + 2;
      } else {
        if (c == 92) {
          // backslash escape
          var e = in(p + 1);
          if (e == 69 || e == 101) {
            emit(2);                    // \E escape
          } else {
            if (e >= 48 && e <= 57) {
              // octal
              var q = p + 1;
              var v = 0;
              while (in(q) >= 48 && in(q) <= 55) {
                v = (v * 8) + (in(q) - 48);
                q = q + 1;
              }
              check(v <= 255, 225);     // octal escape out of byte range
              emit(1);
              p = q;
            } else {
              emit(1);
            }
          }
          p = p + 2;
        } else {
          if (c == 36) {
            // $<delay>
            if (in(p + 1) == 60) {
              var q2 = p + 2;
              var d = 0;
              while (in(q2) >= 48 && in(q2) <= 57) {
                d = (d * 10) + (in(q2) - 48);
                q2 = q2 + 1;
              }
              last_delay = d;
              if (in(q2) == 62) {
                q2 = q2 + 1;
              }
              p = q2;
            } else {
              emit(1);
              p = p + 1;
            }
          } else {
            attr_class(c);
            emit(1);
            p = p + 1;
          }
        }
      }
    }
  }
  return p;
}

fn parse_cap(p) {
  // name[=value] or name[#number]
  var q = p;
  while (is_alnum(in(q)) == 1) {
    q = q + 1;
  }
  if (q == p) {
    return p + 1;                       // junk, skip
  }
  caps_seen = caps_seen + 1;
  if (in(q) == 61) {
    q = parse_string_cap(q + 1);
    if (last_delay > 0 && params_depth >= 2 && out_len > 64) {
      // delay + 2 params + long output: termcap translation corrupts
      bug(226);
    }
    return q;
  }
  if (in(q) == 35) {
    var v = 0;
    var r = q + 1;
    while (in(r) >= 48 && in(r) <= 57) {
      v = (v * 10) + (in(r) - 48);
      r = r + 1;
    }
    check(v < 32768, 227);              // numeric cap overflows short
    return r;
  }
  return q;
}

// end-of-entry audit: crashes only for one configuration of counters
// whose contributing branches are all individually trivial to cover
fn final_audit() {
  var risk = 0;
  if (caps_seen % 5 == 3) { risk = risk + 1; }
  if (out_len % 7 == 2) { risk = risk + 2; }
  if (params_depth >= 3) { risk = risk + 4; }
  if (last_delay > 10) { risk = risk + 8; }
  check(risk != 15, 228);
  return risk;
}

fn main() {
  caps_seen = 0;
  params_depth = 0;
  out_len = 0;
  last_delay = 0;
  attr_mix = 0;
  // entry: name chars until ',', then capabilities
  var p = 0;
  while (in(p) != -1 && in(p) != 44) {
    p = p + 1;
  }
  if (in(p) != 44) {
    return 1;
  }
  p = p + 1;
  var guard = 0;
  while (in(p) != -1 && guard < 64) {
    if (in(p) == 32 || in(p) == 9 || in(p) == 10 || in(p) == 44) {
      p = p + 1;
    } else {
      p = parse_cap(p);
    }
    guard = guard + 1;
  }
  final_audit();
  return caps_seen;
}
|}

let subject : Subject.t =
  {
    name = "infotocap";
    description = "terminfo-to-termcap translator with %-string machine";
    source;
    seeds =
      [
        "xterm,cols#80,am,cup=\\E[%p1%d;%p2%dH,";
        "vt100,bel=^G,sgr0=\\E[m$<2>,";
        "dumb,am,";
      ];
    bugs =
      [
        {
          id = 221;
          summary = "translated output overflow";
          bug_class = Subject.Loop_accumulation;
          witness = "t,x=" ^ String.make 600 'a' ^ ",";
        };
        {
          id = 222;
          summary = "%p escape without parameter digit";
          bug_class = Subject.Shallow;
          witness = "t,x=%pz,";
        };
        {
          id = 223;
          summary = "%{N} literal above 255 in parameterised context";
          bug_class = Subject.Path_dependent;
          witness = "t,x=%p1%{300},";
        };
        {
          id = 224;
          summary = "caret escape with non-control source byte";
          bug_class = Subject.Shallow;
          witness = "t,x=^\x01,";
        };
        {
          id = 225;
          summary = "octal escape beyond byte range";
          bug_class = Subject.Shallow;
          witness = "t,x=\\777,";
        };
        {
          id = 226;
          summary = "delay with two params and long output corrupts translation";
          bug_class = Subject.Path_dependent;
          witness = "t,x=%p1%p2$<5>" ^ String.make 60 'q' ^ ",";
        };
        {
          id = 228;
          summary = "fatal counter configuration in end-of-entry audit";
          bug_class = Subject.Path_dependent;
          witness = "t,a=%p1%p2%p3$<45>XXXX,b,c,";
        };
        {
          id = 227;
          summary = "numeric capability overflows a short";
          bug_class = Subject.Magic;
          witness = "t,c#40000,";
        };
      ];
  }
