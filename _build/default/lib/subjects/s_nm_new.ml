(** nm-new (binutils) stand-in: ELF-like symbol table lister. The paper's
    Table II shows *zero* bugs found by every fuzzer on this subject; we
    reproduce that by seeding a single defect behind an eight-byte magic
    chain plus a semantic constraint that no fuzzer realistically clears
    within the budget. *)

let source =
  {|
// nm_new: ELF-ish symbol lister.
global nsyms;

fn u16(p) {
  return in(p) + (in(p + 1) * 256);
}

fn u32(p) {
  return u16(p) + (u16(p + 2) * 65536);
}

fn sym_name_ok(p, strtab, strsize) {
  var off = u32(p);
  if (off < 0 || off >= strsize) {
    return 0;
  }
  // names must be NUL-terminated within the table
  var q = strtab + off;
  var guard = 0;
  while (in(q) > 0 && guard < 64) {
    q = q + 1;
    guard = guard + 1;
  }
  return in(q) == 0;
}

fn main() {
  nsyms = 0;
  // \x7fELF class2 data1 version1 pad pad
  if (in(0) != 127 || in(1) != 69 || in(2) != 76 || in(3) != 70) {
    return 1;
  }
  if (in(4) != 2 || in(5) != 1 || in(6) != 1 || in(7) != 91) {
    return 2;
  }
  var symoff = u16(8);
  var count = u16(10);
  var stroff = u16(12);
  var strsize = u16(14);
  if (symoff < 16 || count < 0 || count > 32) {
    return 3;
  }
  var i = 0;
  var weak_after_strong = 0;
  var strong_seen = 0;
  while (i < count) {
    var p = symoff + (i * 8);
    var bind = in(p + 4);
    if (bind == 1) {
      strong_seen = strong_seen + 1;
    }
    if (bind == 2 && strong_seen >= 7) {
      weak_after_strong = weak_after_strong + 1;
    }
    if (sym_name_ok(p, stroff, strsize) == 1) {
      nsyms = nsyms + 1;
    }
    i = i + 1;
  }
  if (weak_after_strong >= 5 && nsyms == count && count == 31) {
    // needs exactly 31 valid symbols, 7 strong then 5 weak: beyond any
    // realistic budget, mirroring nm-new's zero-bug row in the paper
    bug(201);
  }
  return nsyms;
}
|}

let b = Subject.b
let u16le = Subject.u16le

let elf ~symoff ~count ~stroff ~strsize rest =
  b [ 127; 69; 76; 70; 2; 1; 1; 91 ]
  ^ u16le symoff ^ u16le count ^ u16le stroff ^ u16le strsize
  ^ rest

(* Build the (practically unreachable) witness so the ground truth stays
   checkable: 31 symbols, the first 7 STB_GLOBAL, then 5 STB_WEAK. *)
let witness_201 =
  let nsym = 31 in
  let symoff = 16 in
  let stroff = symoff + (nsym * 8) in
  let syms =
    String.concat ""
      (List.init nsym (fun i ->
           let bind = if i < 7 then 1 else if i < 12 then 2 else 0 in
           Subject.u32le 0 ^ b [ bind; 0; 0; 0 ]))
  in
  elf ~symoff ~count:nsym ~stroff ~strsize:4 (syms ^ b [ 0; 0; 0; 0 ])

let subject : Subject.t =
  {
    name = "nm_new";
    description = "ELF-like symbol lister (intentionally bug-free in practice)";
    source;
    seeds =
      [
        elf ~symoff:16 ~count:2 ~stroff:32 ~strsize:4
          (Subject.u32le 0 ^ b [ 1; 0; 0; 0 ] ^ Subject.u32le 1 ^ b [ 0; 0; 0; 0 ]
          ^ b [ 0; 97; 98; 0 ]);
        "\x7fELF";
      ];
    bugs =
      [
        {
          id = 201;
          summary = "weak-after-strong rebind with exactly 31 valid symbols";
          bug_class = Subject.Deep;
          witness = witness_201;
        };
      ];
  }
