(** cflow stand-in: a C call-graph extractor skeleton. Input is a token
    stream (one byte per token). Reproduces the §V-A case study: an
    out-of-bounds index ([curs]) that grows through repeated executions of
    the same functions while [parse_function_declaration] skips unexpected
    tokens — the loop-accumulation bug the paper's path fuzzer found and
    pcguard missed. *)

let source =
  {|
// cflow: token stream parser. Tokens (one byte each):
//   'f' function keyword, '(' ')' '{' '}' ';' punctuation,
//   'i' identifier, 's' storage-class, '*' pointer, others skipped.
global token_stack[16];
global curs;
global depth;
global saw_proto;
global storage_classes;

fn push_token(t) {
  // parser.c:302 analogue: the index creeps up across repeated
  // skip-unexpected-token cycles; the original has no bounds check.
  check(curs < 16, 101);
  token_stack[curs] = t;
  curs = curs + 1;
  return 0;
}

fn pop_token() {
  if (curs > 0) {
    curs = curs - 1;
    return token_stack[curs];
  }
  return -1;
}

fn parse_function_declaration(pos) {
  var p = pos;
  var t = in(p);
  while (t != -1 && t != 123) {
    if (t == 40) {
      saw_proto = 1;
    } else {
      if (t == 115) {
        storage_classes = storage_classes + 1;
      } else {
        if (t != 41 && t != 59 && t != 42) {
          push_token(t);
        }
      }
    }
    p = p + 1;
    t = in(p);
  }
  return p;
}

fn parse_body(pos) {
  var p = pos + 1;
  var t = in(p);
  while (t != -1 && t != 125) {
    if (t == 123) {
      depth = depth + 1;
      check(depth < 8, 102);
    }
    if (t == 105) {
      // identifier inside a body: a call site if followed by '('
      if (saw_proto == 1 && depth == 0 && in(p + 1) == 40) {
        // path-dependent: prototype parens seen during the declaration
        // AND a top-level call expression in the body
        bug(103);
      }
      if (storage_classes >= 3 && pop_token() == 105) {
        // three storage-class tokens skipped, then an identifier call
        // with an identifier on the token stack: confused symbol table
        bug(104);
      }
    }
    p = p + 1;
    t = in(p);
  }
  return p;
}

fn main() {
  curs = 0;
  depth = 0;
  saw_proto = 0;
  storage_classes = 0;
  var p = 0;
  while (in(p) != -1) {
    if (in(p) == 102) {
      p = parse_function_declaration(p + 1);
      if (in(p) == 123) {
        p = parse_body(p);
      }
    }
    p = p + 1;
  }
  return curs;
}
|}

let subject : Subject.t =
  {
    name = "cflow";
    description = "C call-graph extractor skeleton over a token stream";
    source;
    seeds = [ "fi(){ii;}"; "f(){x}"; "fsi*(){i;}" ];
    bugs =
      [
        {
          id = 101;
          summary = "token_stack overflow via repeated skipped tokens";
          bug_class = Subject.Loop_accumulation;
          witness = "f" ^ String.make 17 'a';
        };
        {
          id = 102;
          summary = "nesting depth overflow in parse_body";
          bug_class = Subject.Shallow;
          witness = "f{" ^ String.make 8 '{';
        };
        {
          id = 103;
          summary = "top-level call after prototype confuses declaration parser";
          bug_class = Subject.Path_dependent;
          witness = "f({i(";
        };
        {
          id = 104;
          summary = "storage-class tokens plus stacked identifier misparse";
          bug_class = Subject.Path_dependent;
          witness = "fisss{i;";
        };
      ];
  }
