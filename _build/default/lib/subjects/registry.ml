(** All benchmark subjects, in the order the paper's tables list them. *)

let all : Subject.t list =
  [
    S_cflow.subject;
    S_exiv2.subject;
    S_ffmpeg.subject;
    S_flvmeta.subject;
    S_gdk.subject;
    S_imginfo.subject;
    S_infotocap.subject;
    S_jhead.subject;
    S_jq.subject;
    S_lame.subject;
    S_mp3gain.subject;
    S_mp42aac.subject;
    S_mujs.subject;
    S_nm_new.subject;
    S_objdump.subject;
    S_pdftotext.subject;
    S_sqlite3.subject;
    S_tiffsplit.subject;
  ]

let find (name : string) : Subject.t option =
  List.find_opt (fun (s : Subject.t) -> s.name = name) all

let find_exn name =
  match find name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "unknown subject %s" name)

let names () = List.map (fun (s : Subject.t) -> s.name) all

(** Total ground-truth bug count across the suite. *)
let total_bugs () =
  List.fold_left (fun acc (s : Subject.t) -> acc + List.length s.bugs) 0 all
