(** objdump stand-in: object-file disassembler. Section header walk plus
    an opcode decode loop with mode-dependent operand handling — the
    richest bug population in the paper (9–12 unique bugs), spread over
    shallow decode errors, path-dependent prefix state and deep
    relocation handling. *)

let source =
  {|
// objdump: section table + linear-sweep disassembler.
global mode64;
global prefix_rep;
global prefix_lock;
global insn_count;
global reloc_count;
global branch_targets[16];
global nbranch;

fn u16(p) {
  return in(p) + (in(p + 1) * 256);
}

fn u32(p) {
  return u16(p) + (u16(p + 2) * 65536);
}

fn record_branch(target) {
  check(nbranch < 16, 251);             // branch table overflow
  branch_targets[nbranch] = target;
  nbranch = nbranch + 1;
  return nbranch;
}

fn decode_operand(p, kind) {
  if (kind == 0) {
    return 1;                           // register
  }
  if (kind == 1) {
    return 2;                           // imm8
  }
  if (kind == 2) {
    return 5;                           // imm32
  }
  // memory operand with SIB-ish byte
  var sib = in(p);
  var scale = (sib >> 6) & 3;
  var base2 = sib & 7;
  if (base2 == 5 && scale == 3 && mode64 == 0) {
    // 32-bit mode scaled rip-relative: invalid encoding accepted
    bug(252);
  }
  return 2;
}

fn decode_insn(p) {
  var op = in(p);
  if (op == -1) {
    return -1;
  }
  var size = 1;
  if (op == 240) {
    prefix_lock = 1;
    return 1;
  }
  if (op == 243) {
    prefix_rep = 1;
    return 1;
  }
  if (op == 15) {
    // two-byte opcode
    var op2 = in(p + 1);
    if (op2 == 184 && prefix_rep == 1) {
      // rep-prefixed popcnt-like: operand decode with stale lock prefix
      if (prefix_lock == 1) {
        bug(253);                       // lock+rep combination (path-dep)
      }
      size = 2 + decode_operand(p + 2, 3);
    } else {
      if (op2 >= 128 && op2 <= 143) {
        // long conditional branch
        record_branch(p + u32(p + 2));
        size = 6;
      } else {
        size = 2;
      }
    }
    prefix_rep = 0;
    prefix_lock = 0;
    return size;
  }
  if (op >= 112 && op <= 127) {
    // short branch
    var disp = in(p + 1);
    if (disp > 127) {
      disp = disp - 256;
    }
    record_branch(p + 2 + disp);
    size = 2;
  } else {
    if (op == 233) {
      record_branch(p + 5 + u32(p + 1));
      size = 5;
    } else {
      if (op >= 176 && op <= 183) {
        size = 1 + decode_operand(p + 1, 1);
      } else {
        if (op == 199) {
          size = 1 + decode_operand(p + 1, 3);
          size = size + 4;
        } else {
          size = 1;
        }
      }
    }
  }
  if (prefix_lock == 1 && (op < 128 || op > 143) && op != 199) {
    // lock prefix on non-lockable instruction
    bug(254);
  }
  prefix_rep = 0;
  prefix_lock = 0;
  insn_count = insn_count + 1;
  return size;
}

fn parse_relocs(p, n) {
  var i = 0;
  while (i < n) {
    var off = u32(p + (i * 8));
    var typ = u32(p + (i * 8) + 4);
    check(typ <= 38, 255);              // unknown relocation type
    if (off > 65536 && mode64 == 0) {
      bug(256);                         // 32-bit reloc offset overflow
    }
    reloc_count = reloc_count + 1;
    i = i + 1;
  }
  return n;
}

fn disassemble(p, end_) {
  var q = p;
  var guard = 0;
  while (q < end_ && guard < 128) {
    var s = decode_insn(q);
    if (s <= 0) {
      return -1;
    }
    q = q + s;
    guard = guard + 1;
  }
  if (nbranch >= 12 && insn_count < 16) {
    // branch-dense region: jump table heuristic miscounts
    bug(257);
  }
  return insn_count;
}

// post-disassembly audit: fatal only for one configuration of counters
fn disasm_audit() {
  var risk = 0;
  if (insn_count % 4 == 1) { risk = risk + 1; }
  if (nbranch >= 2) { risk = risk + 2; }
  if (reloc_count >= 1) { risk = risk + 4; }
  if (mode64 == 1) { risk = risk + 8; }
  check(risk != 15, 258);
  return risk;
}

fn main() {
  mode64 = 0;
  prefix_rep = 0;
  prefix_lock = 0;
  insn_count = 0;
  reloc_count = 0;
  nbranch = 0;
  // header: "OBJ" mode, then sections: [kind len16 payload]
  if (in(0) != 79 || in(1) != 66 || in(2) != 74) {
    return 1;
  }
  mode64 = in(3) & 1;
  var p = 4;
  var sections = 0;
  while (in(p) != -1 && sections < 8) {
    var kind = in(p);
    var n = u16(p + 1);
    if (n < 0) {
      return 2;
    }
    if (kind == 1) {
      disassemble(p + 3, p + 3 + n);
    }
    if (kind == 2) {
      var cnt = in(p + 3);
      if (cnt >= 0 && (cnt * 8) < n) {
        parse_relocs(p + 4, cnt);
      }
    }
    p = p + 3 + n;
    sections = sections + 1;
  }
  disasm_audit();
  return insn_count;
}
|}

let b = Subject.b
let u16le = Subject.u16le
let u32le = Subject.u32le

let hdr ?(mode = 0) () = "OBJ" ^ b [ mode ]
let sec kind payload = b [ kind ] ^ u16le (String.length payload) ^ payload

let subject : Subject.t =
  {
    name = "objdump";
    description = "object-file disassembler with prefix state machine";
    source;
    seeds =
      [
        hdr () ^ sec 1 (b [ 0xB0; 7; 0x90; 0xE9 ] ^ u32le 2 ^ b [ 0x90 ]);
        hdr ~mode:1 () ^ sec 1 (b [ 0x73; 2; 0x90; 0x90 ]);
        hdr () ^ sec 2 (b [ 1 ] ^ u32le 16 ^ u32le 7 ^ b [ 0 ]);
      ];
    bugs =
      [
        {
          id = 251;
          summary = "branch target table overflow";
          bug_class = Subject.Loop_accumulation;
          witness =
            hdr ()
            ^ sec 1 (String.concat "" (List.init 17 (fun _ -> Subject.b [ 0x70; 0 ])));
        };
        {
          id = 252;
          summary = "scaled rip-relative operand accepted in 32-bit mode";
          bug_class = Subject.Magic;
          witness = hdr () ^ sec 1 (b [ 0xC7; 0xCD; 0; 0; 0; 0; 0; 0; 0 ]);
        };
        {
          id = 253;
          summary = "lock+rep prefix combination on two-byte opcode";
          bug_class = Subject.Path_dependent;
          witness = hdr () ^ sec 1 (b [ 0xF0; 0xF3; 0x0F; 0xB8; 0; 0 ]);
        };
        {
          id = 254;
          summary = "lock prefix on non-lockable instruction";
          bug_class = Subject.Path_dependent;
          witness = hdr () ^ sec 1 (b [ 0xF0; 0x90 ]);
        };
        {
          id = 255;
          summary = "unknown relocation type";
          bug_class = Subject.Shallow;
          witness = hdr () ^ sec 2 (b [ 1 ] ^ u32le 16 ^ u32le 40 ^ b [ 0 ]);
        };
        {
          id = 256;
          summary = "32-bit relocation offset overflow";
          bug_class = Subject.Magic;
          witness = hdr () ^ sec 2 (b [ 1 ] ^ u32le 70000 ^ u32le 7 ^ b [ 0 ]);
        };
        {
          id = 258;
          summary = "fatal counter configuration in post-disassembly audit";
          bug_class = Subject.Path_dependent;
          witness =
            hdr ~mode:1 ()
            ^ sec 1
                (String.concat "" (List.init 3 (fun _ -> Subject.b [ 0x70; 0 ]))
                ^ String.make 2 '\x90')
            ^ sec 2 (b [ 2 ] ^ u32le 16 ^ u32le 7 ^ u32le 20 ^ u32le 8 ^ b [ 0 ]);
        };
        {
          id = 257;
          summary = "jump-table heuristic miscount in branch-dense region";
          bug_class = Subject.Path_dependent;
          witness =
            hdr ()
            ^ sec 1 (String.concat "" (List.init 12 (fun _ -> Subject.b [ 0x70; 0 ])));
        };
      ];
  }
