(** jhead stand-in: a JPEG/EXIF header walker. Input is a JPEG-like byte
    stream: SOI marker [0xFF 0xD8], then segments [0xFF kind len_hi len_lo
    payload...]. Six seeded bugs (matching the subject's bug count in the
    paper) across marker handling and the EXIF sub-parser. *)

let source =
  {|
// jhead: JPEG marker segment walker with an EXIF sub-parser.
global exif_offset;
global orientation;
global thumb_len;

fn u16(p) {
  return (in(p) * 256) + in(p + 1);
}

fn parse_exif(p, seg_end) {
  // TIFF-ish: byte order mark then tag list: [tag16 val16] pairs
  var order = u16(p);
  var q = p + 2;
  var tags = 0;
  while (q + 3 < seg_end && tags < 12) {
    var tag = u16(q);
    var val = u16(q + 2);
    if (tag == 274) {
      orientation = val;
      check(orientation <= 8, 111);   // unchecked orientation index
    }
    if (tag == 513) {
      exif_offset = val;
    }
    if (tag == 514) {
      thumb_len = val;
      if (exif_offset > 0 && order == 19789) {
        // path-dependent: thumbnail length after offset tag, big-endian
        check(exif_offset + thumb_len < 65536, 112);
      }
    }
    q = q + 4;
    tags = tags + 1;
  }
  return tags;
}

fn parse_segment(p) {
  var kind = in(p + 1);
  var seg_len = u16(p + 2);
  if (seg_len >= 0 && seg_len < 2) {
    bug(113);                          // length underflow (real jhead CVE class)
  }
  if (kind == 225) {
    // APP1: check "Ex" signature then parse EXIF
    if (in(p + 4) == 69 && in(p + 5) == 120) {
      parse_exif(p + 6, p + 2 + seg_len);
    }
  }
  if (kind == 219) {
    // DQT: quantisation table must be 64 entries
    var n = seg_len - 3;
    check(n <= 64, 114);
  }
  if (kind == 192) {
    // SOF0: dimensions
    var h = u16(p + 5);
    var w = u16(p + 7);
    if (w == 0 && h > 0) {
      bug(115);                        // zero-width division downstream
    }
  }
  return p + 2 + seg_len;
}

fn main() {
  exif_offset = 0;
  orientation = 1;
  thumb_len = 0;
  if (in(0) != 255 || in(1) != 216) {
    return 1;                          // not a JPEG
  }
  var p = 2;
  var segs = 0;
  while (in(p) == 255 && in(p + 1) != -1 && segs < 16) {
    if (in(p + 1) == 217) {
      return 0;                        // EOI
    }
    var q = parse_segment(p);
    if (q <= p) {
      bug(116);                        // non-advancing segment loop
    }
    p = q;
    segs = segs + 1;
  }
  return 0;
}
|}

let b = Subject.b

(* A segment: 0xFF kind len_hi len_lo payload; len covers itself+payload. *)
let seg kind payload =
  b [ 0xFF; kind; (String.length payload + 2) lsr 8; (String.length payload + 2) land 255 ]
  ^ payload

let soi = b [ 0xFF; 0xD8 ]
let eoi = b [ 0xFF; 0xD9 ]

(* EXIF payload: "Ex" + order16 + tag/val pairs. *)
let exif ?(order = 0x4D4D) tags =
  "Ex"
  ^ b [ order lsr 8; order land 255 ]
  ^ String.concat ""
      (List.map (fun (t, v) -> b [ t lsr 8; t land 255; v lsr 8; v land 255 ]) tags)

let subject : Subject.t =
  {
    name = "jhead";
    description = "JPEG marker walker with EXIF tag sub-parser";
    source;
    seeds =
      [
        soi ^ seg 0xE1 (exif [ (274, 1); (513, 100) ]) ^ eoi;
        soi ^ seg 0xC0 (b [ 8; 0; 16; 0; 16 ]) ^ eoi;
        soi ^ seg 0xDB (String.make 32 '\001') ^ eoi;
      ];
    bugs =
      [
        {
          id = 111;
          summary = "EXIF orientation value used as unchecked index";
          bug_class = Subject.Shallow;
          witness = soi ^ seg 0xE1 (exif [ (274, 9) ]) ^ eoi;
        };
        {
          id = 112;
          summary = "thumbnail offset+length overflow, big-endian only, after offset tag";
          bug_class = Subject.Path_dependent;
          witness = soi ^ seg 0xE1 (exif [ (513, 40000); (514, 40000) ]) ^ eoi;
        };
        {
          id = 113;
          summary = "segment length underflow wraps the walker";
          bug_class = Subject.Shallow;
          witness = soi ^ b [ 0xFF; 0xE0; 0; 1 ];
        };
        {
          id = 114;
          summary = "oversized quantisation table copy";
          bug_class = Subject.Shallow;
          witness = soi ^ seg 0xDB (String.make 70 '\000') ^ eoi;
        };
        {
          id = 115;
          summary = "zero image width with non-zero height";
          bug_class = Subject.Magic;
          witness = soi ^ seg 0xC0 (b [ 8; 0; 16; 0; 0 ]) ^ eoi;
        };
        {
          id = 116;
          summary = "non-advancing segment pointer on truncated header";
          bug_class = Subject.Deep;
          witness = soi ^ b [ 0xFF; 0xE0 ];
        };
      ];
  }
