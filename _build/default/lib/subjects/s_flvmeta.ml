(** flvmeta stand-in: an FLV metadata extractor. Input: "FLV" magic,
    version byte, flags byte, then tags [type len_hi len_lo payload...].
    Two seeded bugs, matching the subject's small bug surface. *)

let source =
  {|
// flvmeta: FLV container tag walker.
global audio_tags;
global video_tags;

fn u16(p) {
  return (in(p) * 256) + in(p + 1);
}

fn handle_script(p, taglen) {
  // script tags carry AMF data; name length first
  var namelen = u16(p);
  check(namelen <= taglen, 121);       // name length exceeds tag body
  return namelen;
}

fn main() {
  audio_tags = 0;
  video_tags = 0;
  if (in(0) != 70 || in(1) != 76 || in(2) != 86) {
    return 1;                          // not FLV
  }
  var version = in(3);
  var flags = in(4);
  var p = 5;
  var tags = 0;
  while (in(p) != -1 && tags < 24) {
    var kind = in(p);
    var taglen = u16(p + 1);
    if (taglen < 0) {
      return 2;                        // truncated
    }
    if (kind == 8) {
      audio_tags = audio_tags + 1;
      if ((flags & 4) == 0) {
        // audio tag but header said no audio: stale counter
        if (version >= 5 && video_tags > 0) {
          bug(122);                    // path-dependent mixed-stream state
        }
      }
    }
    if (kind == 9) {
      video_tags = video_tags + 1;
    }
    if (kind == 18) {
      handle_script(p + 3, taglen);
    }
    p = p + 3 + taglen;
    tags = tags + 1;
  }
  return 0;
}
|}

let b = Subject.b

let tag kind payload =
  b [ kind; String.length payload lsr 8; String.length payload land 255 ] ^ payload

let hdr ?(version = 1) ?(flags = 5) () = "FLV" ^ b [ version; flags ]

let subject : Subject.t =
  {
    name = "flvmeta";
    description = "FLV container tag walker with script-tag sub-parser";
    source;
    seeds =
      [
        hdr () ^ tag 8 "aa" ^ tag 9 "vv";
        hdr () ^ tag 18 (b [ 0; 2 ] ^ "ab");
      ];
    bugs =
      [
        {
          id = 121;
          summary = "script tag name length exceeds tag body";
          bug_class = Subject.Shallow;
          witness = hdr () ^ tag 18 (b [ 0; 9 ] ^ "ab");
        };
        {
          id = 122;
          summary = "audio tag with no-audio flags after video, v5+ only";
          bug_class = Subject.Path_dependent;
          witness = hdr ~version:5 ~flags:0 () ^ tag 9 "v" ^ tag 8 "a";
        };
      ];
  }
