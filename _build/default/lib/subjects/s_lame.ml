(** lame stand-in: WAV reader + MP3 encoder front-end. Per-sample analysis
    loops with amplitude-dependent branching make it the second-largest
    queue-explosion subject (37x in Table III); bugs sit in resampling and
    psychoacoustic block switching. *)

let source =
  {|
// lame: WAV header + sample analysis + block-switch state machine.
global channels;
global sample_rate;
global bits;
global clipped;
global block_type;
global switches;
global energy[4];

fn u16(p) {
  return in(p) + (in(p + 1) * 256);
}

fn u32(p) {
  return u16(p) + (u16(p + 2) * 65536);
}

// per-sample shape analysis: six independent decisions per activation
fn sample_shape(v) {
  var w = 0;
  if ((v & 1) != 0) { w = w + 1; }
  if ((v & 2) != 0) { w = w + 2; }
  if ((v & 4) != 0) { w = w + 4; }
  if ((v & 8) != 0) { w = w + 8; }
  if ((v & 32) != 0) { w = w + 16; }
  if (v > 160) { w = w + 32; }
  return w;
}

fn classify_sample(v) {
  // granule energy bucketing
  var a = abs(v - 128);
  sample_shape(v);
  if (a > 120) {
    clipped = clipped + 1;
    check(clipped <= 8, 231);           // clip counter overflows scalefactor
    return 3;
  }
  if (a > 64) { return 2; }
  if (a > 16) { return 1; }
  return 0;
}

fn block_switch(kind) {
  // long(0) <-> short(1) transitions through start(2)/stop(3) windows
  if (kind == 3 && block_type == 0) {
    block_type = 2;
    switches = switches + 1;
  } else {
    if (kind <= 1 && block_type == 2) {
      block_type = 1;
      switches = switches + 1;
    } else {
      if (kind == 0 && block_type == 1) {
        block_type = 3;
        switches = switches + 1;
      } else {
        if (block_type == 3) {
          block_type = 0;
        }
      }
    }
  }
  if (switches >= 5 && block_type == 3 && channels == 2) {
    // stereo block-switch thrash: window buffer reused across channels
    bug(232);
  }
  return block_type;
}

fn analyze(p, n) {
  var i = 0;
  while (i < n) {
    var kind = classify_sample(in(p + i));
    energy[kind] = energy[kind] + 1;
    block_switch(kind);
    i = i + 1;
  }
  return 0;
}

fn resample_ratio() {
  // output rate fixed at 44100-ish tier
  check(sample_rate > 0, 233);          // division by zero rate
  var ratio = 4410000 / sample_rate;
  if (ratio > 400 && bits == 8) {
    bug(234);                           // extreme upsample with 8-bit input
  }
  return ratio;
}

// post-encode audit: fatal only for one configuration of counters
fn gain_audit() {
  var risk = 0;
  if (energy[0] > 0 && energy[3] > 0) { risk = risk + 1; }
  if (switches % 4 == 2) { risk = risk + 2; }
  if (clipped == 5) { risk = risk + 4; }
  if (sample_rate % 11 == 0 && sample_rate > 0) { risk = risk + 8; }
  check(risk != 15, 235);
  return risk;
}

fn main() {
  channels = 0;
  sample_rate = 0;
  bits = 0;
  clipped = 0;
  block_type = 0;
  switches = 0;
  // "RIFF....WAVEfmt " header, little-endian fields
  if (in(0) != 82 || in(1) != 73 || in(2) != 70 || in(3) != 70) {
    return 1;
  }
  if (in(8) != 87 || in(9) != 65 || in(10) != 86 || in(11) != 69) {
    return 1;
  }
  channels = u16(22);
  sample_rate = u32(24);
  bits = u16(34);
  if (channels < 1 || channels > 2) {
    return 2;
  }
  if (bits != 8 && bits != 16) {
    return 3;
  }
  resample_ratio();
  // data chunk at fixed offset 44
  var n = len() - 44;
  if (n > 0) {
    analyze(44, n);
  }
  gain_audit();
  return switches;
}
|}

let b = Subject.b
let u16le = Subject.u16le
let u32le = Subject.u32le

let wav ?(channels = 1) ?(rate = 44100) ?(bits = 16) samples =
  "RIFF" ^ u32le (36 + String.length samples) ^ "WAVEfmt " ^ u32le 16 ^ u16le 1
  ^ u16le channels ^ u32le rate ^ u32le (rate * channels * (bits / 8))
  ^ u16le (channels * (bits / 8)) ^ u16le bits ^ "data"
  ^ u32le (String.length samples) ^ samples

(* sample byte with amplitude class: 0 quiet, 1 mid, 2 loud, 3 clip *)
let s_quiet = '\x80'
let s_mid = '\xb0'
let s_loud = '\xf0'
let s_clip = '\x00'

let subject : Subject.t =
  {
    name = "lame";
    description = "WAV reader and MP3 block-switch front-end";
    source;
    seeds =
      [
        wav (String.make 32 s_quiet);
        wav ~channels:2 (String.concat "" [ String.make 4 s_mid; String.make 4 s_quiet ]);
        wav ~rate:8000 ~bits:16 (String.make 8 s_loud);
      ];
    bugs =
      [
        {
          id = 231;
          summary = "clip counter overflows scalefactor table";
          bug_class = Subject.Loop_accumulation;
          witness = wav (String.make 9 s_clip);
        };
        {
          id = 232;
          summary = "stereo window-buffer reuse under block-switch thrash";
          bug_class = Subject.Path_dependent;
          witness =
            wav ~channels:2
              (String.concat ""
                 (List.init 6 (fun _ ->
                      String.make 1 s_clip ^ String.make 1 s_mid
                      ^ String.make 1 s_quiet)));
        };
        {
          id = 235;
          summary = "fatal counter configuration in post-encode audit";
          bug_class = Subject.Path_dependent;
          witness =
            wav ~rate:22000
              (String.concat ""
                 [
                   String.make 1 s_quiet; String.make 1 s_clip;
                   String.make 1 s_mid; String.make 4 s_clip;
                 ]);
        };
        {
          id = 233;
          summary = "zero sample rate divides the resampler";
          bug_class = Subject.Magic;
          witness = wav ~rate:0 "";
        };
        {
          id = 234;
          summary = "extreme upsampling ratio with 8-bit input";
          bug_class = Subject.Magic;
          witness = wav ~rate:9000 ~bits:8 "";
        };
      ];
  }
