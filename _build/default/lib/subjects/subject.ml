(** The benchmark-subject abstraction: a MiniC program standing in for one
    UNIFUZZ target, with seed inputs, a ground-truth bug table, and one
    *witness input* per bug. The witnesses make the paper's manual bug
    deduplication exact and are verified by the test suite (every witness
    provably triggers its bug id; every seed runs crash-free). *)

type bug_class =
  | Shallow  (** reachable with little coverage progress *)
  | Magic  (** gated behind multi-byte magic values (cmplog territory) *)
  | Path_dependent
      (** triggers only via a specific path over edges that are all
          individually coverable — the paper's motivating class (§II-B) *)
  | Loop_accumulation
      (** state accumulated over repeated executions of the same paths,
          like the cflow [curs] overflow of §V-A *)
  | Deep  (** requires sustained coverage progress to reach *)

let bug_class_name = function
  | Shallow -> "shallow"
  | Magic -> "magic"
  | Path_dependent -> "path-dependent"
  | Loop_accumulation -> "loop-accumulation"
  | Deep -> "deep"

type bug = {
  id : int;  (** ground-truth identity, matches [bug]/[check] ids in source *)
  summary : string;
  bug_class : bug_class;
  witness : string;  (** a known input that triggers exactly this bug *)
}

type t = {
  name : string;  (** UNIFUZZ subject this stands in for *)
  description : string;
  source : string;  (** MiniC source text *)
  seeds : string list;
  bugs : bug list;
}

(** Compile a subject's source (parse + check + lower); memoised because
    experiments instantiate subjects repeatedly. *)
let ir_cache : (string, Minic.Ir.program) Hashtbl.t = Hashtbl.create 32

let program (t : t) : Minic.Ir.program =
  match Hashtbl.find_opt ir_cache t.name with
  | Some p -> p
  | None ->
      let p = Minic.Lower.compile t.source in
      Hashtbl.replace ir_cache t.name p;
      p

(** Number of MiniC functions (the "Functions" column of Table I). *)
let num_functions (t : t) : int = Array.length (program t).funcs

let bug_ids (t : t) : int list = List.map (fun b -> b.id) t.bugs

(** Check one witness: run it and return the crash identity observed. *)
let witness_identity (t : t) (b : bug) : Vm.Crash.identity option =
  match Vm.Interp.crash_of (program t) ~input:b.witness with
  | Some crash -> Some (Vm.Crash.bug_identity crash)
  | None -> None

(* Helpers for building binary seed/witness strings. *)
let b (l : int list) : string =
  String.init (List.length l) (fun i -> Char.chr (List.nth l i land 255))

let u16le v = b [ v land 255; (v lsr 8) land 255 ]
let u32le v = b [ v land 255; (v lsr 8) land 255; (v lsr 16) land 255; (v lsr 24) land 255 ]
