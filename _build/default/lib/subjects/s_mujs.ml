(** mujs stand-in: a tiny expression-language front-end (lexer, Pratt
    parser via recursion, constant evaluator) — the recursion-heavy
    subject. Bugs live in operator precedence handling, scope depth and
    the string-literal scanner. *)

let source =
  {|
// mujs: expression parser/evaluator over ASCII input.
// pos is threaded through a global cursor.
global cur;
global paren_depth;
global strings_seen;
global idents_seen;

fn peek() {
  return in(cur);
}

fn advance() {
  cur = cur + 1;
  return cur;
}

fn skip_ws() {
  while (peek() == 32 || peek() == 9) {
    advance();
  }
  return 0;
}

fn parse_primary() {
  skip_ws();
  var c = peek();
  if (c == 40) {
    advance();
    paren_depth = paren_depth + 1;
    check(paren_depth <= 10, 241);      // parser recursion overflow
    var v = parse_expr(0);
    skip_ws();
    if (peek() == 41) {
      advance();
      paren_depth = paren_depth - 1;
    }
    return v;
  }
  if (c == 34) {
    // string literal
    advance();
    strings_seen = strings_seen + 1;
    var n = 0;
    while (peek() != 34 && peek() != -1) {
      if (peek() == 92) {
        advance();
        if (peek() == 117) {
          // \uXXXX
          var i = 0;
          var v2 = 0;
          advance();
          while (i < 4) {
            var h = peek();
            if (h >= 48 && h <= 57) {
              v2 = (v2 * 16) + (h - 48);
            } else {
              if (h >= 97 && h <= 102) {
                v2 = (v2 * 16) + (h - 87);
              } else {
                check(0 == 1, 242);     // malformed unicode escape
              }
            }
            advance();
            i = i + 1;
          }
          if (v2 >= 55296 && v2 <= 57343 && strings_seen > 1) {
            // lone surrogate in a second string: intern table confusion
            bug(243);
          }
        } else {
          advance();
        }
      } else {
        advance();
      }
      n = n + 1;
    }
    advance();
    return n;
  }
  if (c >= 48 && c <= 57) {
    var num = 0;
    while (peek() >= 48 && peek() <= 57) {
      num = (num * 10) + (peek() - 48);
      advance();
    }
    return num;
  }
  if ((c >= 97 && c <= 122) || c == 95) {
    idents_seen = idents_seen + 1;
    while ((peek() >= 97 && peek() <= 122) || peek() == 95) {
      advance();
    }
    return 1;
  }
  if (c == 45) {
    advance();
    return 0 - parse_primary();
  }
  advance();
  return 0;
}

fn prec_of(op) {
  if (op == 43 || op == 45) { return 1; }
  if (op == 42 || op == 47 || op == 37) { return 2; }
  if (op == 94) { return 3; }
  return 0;
}

fn apply(op, a, b2) {
  if (op == 43) { return a + b2; }
  if (op == 45) { return a - b2; }
  if (op == 42) { return a * b2; }
  if (op == 47) {
    check(b2 != 0, 244);                // constant-folded division by zero
    return a / b2;
  }
  if (op == 37) {
    check(b2 != 0, 245);                // constant-folded modulo by zero
    return a % b2;
  }
  if (op == 94) {
    // exponent by squaring, bounded
    var r = 1;
    var i3 = 0;
    while (i3 < b2 && i3 < 20) {
      r = r * a;
      i3 = i3 + 1;
    }
    if (r > 1000000 && paren_depth > 0 && idents_seen > 0) {
      // folded pow overflow inside parens after an identifier
      bug(246);
    }
    return r;
  }
  return 0;
}

fn parse_expr(min_prec) {
  var lhs = parse_primary();
  skip_ws();
  var op = peek();
  var p2 = prec_of(op);
  while (p2 > 0 && p2 >= min_prec) {
    advance();
    var rhs = parse_expr(p2 + 1);
    lhs = apply(op, lhs, rhs);
    skip_ws();
    op = peek();
    p2 = prec_of(op);
  }
  return lhs;
}

fn main() {
  cur = 0;
  paren_depth = 0;
  strings_seen = 0;
  idents_seen = 0;
  var v = parse_expr(0);
  return v & 255;
}
|}

let subject : Subject.t =
  {
    name = "mujs";
    description = "expression-language lexer/parser/constant folder";
    source;
    seeds =
      [ "1 + 2 * (3 - x)"; {_|"hi" + "Abc"|_}; "10 / 2 % 3" ];
    bugs =
      [
        {
          id = 241;
          summary = "parenthesis nesting overflows parser stack budget";
          bug_class = Subject.Shallow;
          witness = String.make 11 '(' ^ "1";
        };
        {
          id = 242;
          summary = "malformed unicode escape in string literal";
          bug_class = Subject.Shallow;
          witness = {_|"\uZZZZ"|_};
        };
        {
          id = 243;
          summary = "lone surrogate interning in a second string literal";
          bug_class = Subject.Path_dependent;
          witness = {_|"a" + "\ud800"|_};
        };
        {
          id = 244;
          summary = "constant-folded division by zero";
          bug_class = Subject.Shallow;
          witness = "4 / 0";
        };
        {
          id = 245;
          summary = "constant-folded modulo by zero";
          bug_class = Subject.Shallow;
          witness = "4 % 0";
        };
        {
          id = 246;
          summary = "pow overflow folded inside parens after identifier";
          bug_class = Subject.Path_dependent;
          witness = "x + (9 ^ 9)";
        };
      ];
  }
