(** tiffsplit stand-in: TIFF strip extractor. Walks IFDs, reads strip
    offset/bytecount arrays and "copies" strips; the copy loops give this
    subject the large acyclic-path population (22x queue ratio in Table
    III) and several OOB bug sites. *)

let source =
  {|
// tiffsplit: IFD walk + strip copy loops.
global strip_offsets[8];
global strip_counts[8];
global nstrips_off;
global nstrips_cnt;
global out_buf[64];
global out_pos;
global compression;
global byte_mix;

fn u16(p) {
  return in(p) + (in(p + 1) * 256);
}

fn u32(p) {
  return u16(p) + (u16(p + 2) * 65536);
}

fn read_strip_array(p, count, dst) {
  check(count <= 8, 181);               // strip table overflow
  var i = 0;
  while (i < count) {
    var arr = strip_offsets;
    if (dst == 1) {
      arr = strip_counts;
    }
    arr[i] = u32(p + (i * 4));
    i = i + 1;
  }
  return count;
}

// per-byte classification: five independent decisions per activation
fn byte_class(c) {
  var w = 0;
  if ((c & 1) != 0) { w = w + 1; }
  if ((c & 2) != 0) { w = w + 2; }
  if ((c & 4) != 0) { w = w + 4; }
  if ((c & 8) != 0) { w = w + 8; }
  if (c > 64) { w = w + 16; }
  byte_mix = (byte_mix + w) & 63;
  return w;
}

fn copy_strip(src, n) {
  var i = 0;
  while (i < n) {
    var c = in(src + i);
    if (c == -1) {
      return -1;                        // truncated strip
    }
    byte_class(c);
    check(out_pos < 64, 182);           // output buffer overflow
    if (compression == 1 && c == 0) {
      // RLE: zero escapes a run
      var run = in(src + i + 1);
      out_pos = out_pos + run;
      check(out_pos <= 64, 183);        // RLE run skips bounds check
      i = i + 2;
    } else {
      out_buf[out_pos] = c;
      out_pos = out_pos + 1;
      i = i + 1;
    }
  }
  return n;
}

// post-split audit: fatal only for one configuration of counters
fn split_audit() {
  var risk = 0;
  if (out_pos > 8) { risk = risk + 1; }
  if (out_pos % 9 == 4) { risk = risk + 2; }
  if ((byte_mix & 7) == 6) { risk = risk + 4; }
  check(risk != 7, 185);
  return risk;
}

fn main() {
  nstrips_off = 0;
  nstrips_cnt = 0;
  out_pos = 0;
  compression = 0;
  byte_mix = 0;
  if (in(0) != 73 || in(1) != 73 || in(2) != 42) {
    return 1;
  }
  var ifd = u32(4);
  if (ifd <= 0 || ifd >= len()) {
    return 2;
  }
  var n = u16(ifd);
  if (n < 0 || n > 16) {
    return 3;
  }
  var i = 0;
  while (i < n) {
    var p = ifd + 2 + (i * 12);
    var tag = u16(p);
    var count = u32(p + 4);
    var value = u32(p + 8);
    if (tag == 259) {
      compression = value;
    }
    if (tag == 273) {
      // strip offsets: inline if count==1 else pointer
      if (count == 1) {
        strip_offsets[0] = value;
        nstrips_off = 1;
      } else {
        nstrips_off = read_strip_array(value, count, 0);
      }
    }
    if (tag == 279) {
      if (count == 1) {
        strip_counts[0] = value;
        nstrips_cnt = 1;
      } else {
        nstrips_cnt = read_strip_array(value, count, 1);
      }
    }
    i = i + 1;
  }
  if (nstrips_off > 0 && nstrips_cnt != nstrips_off) {
    // mismatched strip tables: the real tiffsplit crashes here too
    bug(184);
  }
  var s = 0;
  while (s < nstrips_off) {
    copy_strip(strip_offsets[s], strip_counts[s]);
    s = s + 1;
  }
  split_audit();
  return out_pos;
}
|}

let b = Subject.b
let u16le = Subject.u16le
let u32le = Subject.u32le

(* Build a little-endian TIFF: header, IFD at 8, then payload data. *)
let tiff entries payload =
  let n = List.length entries in
  "II*" ^ b [ 0 ] ^ u32le 8 ^ u16le n
  ^ String.concat ""
      (List.map
         (fun (tag, count, value) -> u16le tag ^ u16le 4 ^ u32le count ^ u32le value)
         entries)
  ^ u32le 0 ^ payload

let subject : Subject.t =
  {
    name = "tiffsplit";
    description = "TIFF strip extractor with RLE copy loops";
    source;
    seeds =
      [
        (* one strip of 4 bytes right after the IFD *)
        (let body = tiff [ (273, 1, 0); (279, 1, 4) ] "" in
         let fixed =
           tiff [ (273, 1, String.length body); (279, 1, 4) ] "abcd"
         in
         fixed);
        tiff [ (259, 1, 1) ] "";
      ];
    bugs =
      [
        {
          id = 181;
          summary = "strip table count overflow";
          bug_class = Subject.Shallow;
          witness = tiff [ (273, 9, 60) ] (String.make 40 '\001');
        };
        {
          id = 182;
          summary = "output buffer overflow on long strip copy";
          bug_class = Subject.Loop_accumulation;
          witness =
            (let body = tiff [ (273, 1, 0); (279, 1, 70) ] "" in
             tiff
               [ (273, 1, String.length body); (279, 1, 70) ]
               (String.make 70 'x'));
        };
        {
          id = 183;
          summary = "RLE run length skips the per-byte bounds check";
          bug_class = Subject.Path_dependent;
          witness =
            (let body = tiff [ (259, 1, 1); (273, 1, 0); (279, 1, 2) ] "" in
             tiff
               [ (259, 1, 1); (273, 1, String.length body); (279, 1, 2) ]
               (b [ 0; 200 ]));
        };
        {
          id = 185;
          summary = "fatal counter configuration in post-split audit";
          bug_class = Subject.Path_dependent;
          witness =
            (* one 13-byte strip of 0x06 bytes: out_pos=13, byte_mix=14 *)
            (let body = tiff [ (273, 1, 0); (279, 1, 13) ] "" in
             tiff
               [ (273, 1, String.length body); (279, 1, 13) ]
               (String.make 13 '\x06'));
        };
        {
          id = 184;
          summary = "mismatched strip offset/count tables";
          bug_class = Subject.Shallow;
          witness = tiff [ (273, 1, 60); (279, 2, 60) ] (u32le 1 ^ u32le 1);
        };
      ];
  }
