(** mp3gain stand-in: MP3 frame-header walker with a per-frame gain
    analysis accumulator. The gain histogram bug is path-dependent: it
    needs a particular sequence of frame kinds to skew the accumulator,
    matching the subject's profile in the paper (3–4 bugs, with each
    fuzzer family finding a different subset). *)

let source =
  {|
// mp3gain: frame sync walker + gain histogram.
global histogram[32];
global frames;
global max_gain;
global vbr_seen;

fn frame_size(bitrate_idx, padding) {
  var table = array(8);
  table[0] = 0;
  table[1] = 104;
  table[2] = 130;
  table[3] = 156;
  table[4] = 182;
  table[5] = 208;
  table[6] = 261;
  table[7] = 313;
  if (bitrate_idx < 0 || bitrate_idx > 7) {
    return -1;
  }
  return table[bitrate_idx] + padding;
}

fn analyze_frame(p, size) {
  // gain byte lives at a fixed offset in the side info
  var g = in(p + 3);
  if (g < 0) {
    return -1;
  }
  // the histogram key mixes gain with the frame ordinal, so the index
  // creeps upward across frames (loop-accumulation overflow)
  var bucket = (g + (frames * 4)) / 8;
  check(bucket < 32, 161);
  histogram[bucket] = histogram[bucket] + 1;
  if (g > max_gain) {
    max_gain = g;
  }
  frames = frames + 1;
  return 0;
}

fn apply_gain() {
  // replay-gain arithmetic: triggered only with a VBR header seen first
  // and a saturated max gain accumulated across frames
  if (vbr_seen == 1 && max_gain >= 248 && frames >= 3) {
    bug(162);
  }
  if (frames > 0) {
    return max_gain / frames;
  }
  return 0;
}

fn main() {
  frames = 0;
  max_gain = 0;
  vbr_seen = 0;
  var p = 0;
  var guard = 0;
  while (in(p) != -1 && guard < 24) {
    if (in(p) == 255 && (in(p + 1) & 224) == 224) {
      // frame sync
      var bitrate_idx = (in(p + 2) >> 4) & 7;
      var padding = (in(p + 2) >> 1) & 1;
      var size = frame_size(bitrate_idx, padding);
      if (size <= 0) {
        bug(163);                      // free-format frame: size loop stall
      }
      if (in(p + 4) == 88 && in(p + 5) == 105) {
        // "Xi(ng)" VBR header
        vbr_seen = 1;
        var vbr_frames = (in(p + 6) * 256) + in(p + 7);
        check(vbr_frames > 0, 164);    // zero VBR frame count divides later
      }
      analyze_frame(p, size);
      p = p + size;
    } else {
      p = p + 1;
    }
    guard = guard + 1;
  }
  apply_gain();
  return frames;
}
|}

let b = Subject.b

(* frame header: FF Ex (bitrate<<4|pad<<1) gain ... *)
let frame ?(bitrate = 1) ?(pad = 0) ?(gain = 10) ?(tail = "") () =
  let hdr = b [ 0xFF; 0xE0; (bitrate lsl 4) lor (pad lsl 1); gain ] in
  let size =
    [| 0; 104; 130; 156; 182; 208; 261; 313 |].(bitrate) + pad
  in
  hdr ^ tail ^ String.make (max 0 (size - 4 - String.length tail)) '\000'

let subject : Subject.t =
  {
    name = "mp3gain";
    description = "MP3 frame walker with replay-gain histogram";
    source;
    seeds =
      [
        frame () ^ frame ~gain:30 ();
        frame ~bitrate:2 ~tail:(b [ 88; 105; 0; 9 ]) () ^ frame ();
        "ID3garbage" ^ frame ~gain:100 ();
      ];
    bugs =
      [
        {
          id = 161;
          summary = "gain histogram bucket overflow across frames";
          bug_class = Subject.Loop_accumulation;
          witness = frame ~gain:0xFF () ^ frame ~gain:0xFF ();
        };
        {
          id = 162;
          summary = "replay-gain saturation after VBR header and 3+ frames";
          bug_class = Subject.Path_dependent;
          witness =
            frame ~tail:(b [ 88; 105; 0; 9 ]) ()
            ^ frame ~gain:250 () ^ frame ~gain:7 ();
        };
        {
          id = 163;
          summary = "free-format frame stalls the walker";
          bug_class = Subject.Shallow;
          witness = b [ 0xFF; 0xE0; 0x00; 0 ];
        };
        {
          id = 164;
          summary = "zero VBR frame count";
          bug_class = Subject.Magic;
          witness = frame ~tail:(b [ 88; 105; 0; 0 ]) ();
        };
      ];
  }
