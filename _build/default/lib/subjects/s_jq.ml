(** jq stand-in: a recursive-descent JSON parser. One seeded bug (matching
    the paper's single jq bug): a deep path-dependent defect in the
    object-after-nested-array state handling. *)

let source =
  {|
// jq: recursive JSON value parser. Returns position after the value.
global max_depth_seen;
global arrays_open;
global key_count;

fn skip_ws(p) {
  while (in(p) == 32 || in(p) == 10 || in(p) == 9 || in(p) == 13) {
    p = p + 1;
  }
  return p;
}

fn parse_string(p) {
  // assumes in(p) == '"'
  p = p + 1;
  while (in(p) != 34 && in(p) != -1) {
    if (in(p) == 92) {
      p = p + 1;                        // escape
    }
    p = p + 1;
  }
  return p + 1;
}

fn parse_number(p) {
  if (in(p) == 45) { p = p + 1; }
  while (in(p) >= 48 && in(p) <= 57) {
    p = p + 1;
  }
  if (in(p) == 46) {
    p = p + 1;
    while (in(p) >= 48 && in(p) <= 57) {
      p = p + 1;
    }
  }
  return p;
}

fn parse_value(p, depth) {
  p = skip_ws(p);
  if (depth > max_depth_seen) {
    max_depth_seen = depth;
  }
  if (depth > 12) {
    return -2;                          // depth cap, jq errors out
  }
  var c = in(p);
  if (c == 34) {
    return parse_string(p);
  }
  if (c == 91) {
    // array
    arrays_open = arrays_open + 1;
    p = skip_ws(p + 1);
    if (in(p) == 93) {
      return p + 1;
    }
    var more = 1;
    while (more == 1) {
      p = parse_value(p, depth + 1);
      if (p < 0) { return p; }
      p = skip_ws(p);
      if (in(p) == 44) {
        p = skip_ws(p + 1);
      } else {
        more = 0;
      }
    }
    if (in(p) != 93) { return -1; }
    arrays_open = arrays_open - 1;
    return p + 1;
  }
  if (c == 123) {
    // object
    p = skip_ws(p + 1);
    if (in(p) == 125) {
      return p + 1;
    }
    var more = 1;
    while (more == 1) {
      if (in(p) != 34) { return -1; }
      p = parse_string(p);
      key_count = key_count + 1;
      if (arrays_open >= 2 && max_depth_seen >= 4 && key_count >= 3) {
        // jq issue analogue: path-state bookkeeping corrupted when an
        // object with several keys appears under doubly-nested arrays
        bug(131);
      }
      p = skip_ws(p);
      if (in(p) != 58) { return -1; }
      p = parse_value(skip_ws(p + 1), depth + 1);
      if (p < 0) { return p; }
      p = skip_ws(p);
      if (in(p) == 44) {
        p = skip_ws(p + 1);
      } else {
        more = 0;
      }
    }
    if (in(p) != 125) { return -1; }
    return p + 1;
  }
  if (c == 45 || (c >= 48 && c <= 57)) {
    return parse_number(p);
  }
  if (c == 116 || c == 102 || c == 110) {
    // true / false / null: skip the keyword
    while (in(p) >= 97 && in(p) <= 122) {
      p = p + 1;
    }
    return p;
  }
  return -1;
}

fn main() {
  max_depth_seen = 0;
  arrays_open = 0;
  key_count = 0;
  var r = parse_value(0, 0);
  if (r < 0) {
    return 1;
  }
  return 0;
}
|}

let subject : Subject.t =
  {
    name = "jq";
    description = "recursive-descent JSON parser";
    source;
    seeds =
      [
        {_|{"a": [1, 2], "b": "x"}|_};
        {_|[[1, {"k": null}], true]|_};
        "-12.5";
      ];
    bugs =
      [
        {
          id = 131;
          summary = "object key bookkeeping corrupt under doubly-nested arrays";
          bug_class = Subject.Path_dependent;
          witness = {_|[[[{"a":1,"b":2,"c":3}]]]|_};
        };
      ];
  }
