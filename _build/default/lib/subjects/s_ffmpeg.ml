(** ffmpeg stand-in: a chunked media container demuxer with per-codec
    packet decoders. The largest subject by function count, with bugs
    buried deep in specific codec/flag combinations (matching the paper,
    where ffmpeg yields only 0–3 bugs per fuzzer despite its size). *)

let source =
  {|
// ffmpeg: container demuxer + codec dispatch.
// Container: "MKC0", then chunks [fourcc? no: kind8 len16 payload].
global audio_codec;
global video_codec;
global packets;
global keyframes;
global pts_last;
global errors;

fn u16(p) {
  return in(p) + (in(p + 1) * 256);
}

fn clip(v, lo, hi) {
  if (v < lo) { return lo; }
  if (v > hi) { return hi; }
  return v;
}

fn decode_pcm(p, n) {
  var i = 0;
  var acc = 0;
  while (i < n) {
    acc = acc + clip(in(p + i) - 128, -100, 100);
    i = i + 1;
  }
  return acc;
}

fn decode_adpcm(p, n) {
  var pred = 0;
  var step = 4;
  var i = 0;
  while (i < n) {
    var nib = in(p + i) & 15;
    pred = pred + ((nib - 8) * step);
    if ((in(p + i) & 16) != 0) {
      step = step * 2;
    } else {
      if (step > 1) { step = step / 2; }
    }
    check(step <= 2048, 211);           // step table index runaway
    i = i + 1;
  }
  return pred;
}

fn decode_rlevid(p, n, kf) {
  var i = 0;
  var px = 0;
  while (i + 1 < n) {
    var run = in(p + i);
    var val = in(p + i + 1);
    px = px + run;
    if (kf == 0 && px > 4096) {
      // inter frame drawing past the reference frame
      bug(212);
    }
    i = i + 2;
  }
  return px;
}

fn parse_codec_setup(p) {
  audio_codec = in(p);
  video_codec = in(p + 1);
  if (audio_codec > 2) {
    errors = errors + 1;
    audio_codec = 0;
  }
  if (video_codec > 1) {
    errors = errors + 1;
    video_codec = 0;
  }
  return 0;
}

fn handle_audio(p, n) {
  if (audio_codec == 1) {
    return decode_pcm(p, n);
  }
  if (audio_codec == 2) {
    return decode_adpcm(p, n);
  }
  return 0;
}

fn handle_video(p, n, flags) {
  var kf = flags & 1;
  if (kf == 1) {
    keyframes = keyframes + 1;
  }
  if (video_codec == 1) {
    return decode_rlevid(p, n, kf);
  }
  return 0;
}

fn handle_pts(p) {
  var pts = u16(p);
  if (pts < pts_last && keyframes > 1 && audio_codec == 2) {
    // non-monotonic timestamps after a second keyframe with ADPCM audio:
    // the reorder buffer underflows (deep combination)
    bug(213);
  }
  pts_last = pts;
  return pts;
}

fn main() {
  audio_codec = 0;
  video_codec = 0;
  packets = 0;
  keyframes = 0;
  pts_last = 0;
  errors = 0;
  if (in(0) != 77 || in(1) != 75 || in(2) != 67 || in(3) != 48) {
    return 1;
  }
  var p = 4;
  while (in(p) != -1 && packets < 24) {
    var kind = in(p);
    var n = u16(p + 1);
    if (n < 0) {
      return 2;
    }
    if (kind == 1) {
      parse_codec_setup(p + 3);
    }
    if (kind == 2) {
      handle_audio(p + 3, n);
    }
    if (kind == 3) {
      handle_video(p + 4, n - 1, in(p + 3));
    }
    if (kind == 4) {
      handle_pts(p + 3);
    }
    packets = packets + 1;
    p = p + 3 + n;
  }
  return packets;
}
|}

let b = Subject.b
let u16le = Subject.u16le

let chunk kind payload = b [ kind ] ^ u16le (String.length payload) ^ payload
let hdr = "MKC0"

let subject : Subject.t =
  {
    name = "ffmpeg";
    description = "chunked media demuxer with PCM/ADPCM/RLE codecs";
    source;
    seeds =
      [
        hdr ^ chunk 1 (b [ 1; 1 ]) ^ chunk 2 "aaaa" ^ chunk 3 (b [ 1; 4; 1; 4; 1 ]);
        hdr ^ chunk 1 (b [ 2; 0 ]) ^ chunk 2 (b [ 3; 18; 3 ]) ^ chunk 4 (u16le 10);
        hdr ^ chunk 4 (u16le 5) ^ chunk 4 (u16le 9);
      ];
    bugs =
      [
        {
          id = 211;
          summary = "ADPCM step runaway on monotone escalation bits";
          bug_class = Subject.Loop_accumulation;
          witness = hdr ^ chunk 1 (b [ 2; 0 ]) ^ chunk 2 (String.make 12 '\x1f');
        };
        {
          id = 212;
          summary = "inter-frame RLE paints past reference frame";
          bug_class = Subject.Path_dependent;
          witness =
            hdr ^ chunk 1 (b [ 1; 1 ])
            ^ chunk 3 (b [ 0 ] ^ String.concat "" (List.init 20 (fun _ -> Subject.b [ 255; 1 ])));
        };
        {
          id = 213;
          summary = "reorder underflow: non-monotonic pts, 2 keyframes, ADPCM";
          bug_class = Subject.Deep;
          witness =
            hdr ^ chunk 1 (b [ 2; 1 ])
            ^ chunk 3 (b [ 1; 1; 1 ])
            ^ chunk 3 (b [ 1; 1; 1 ])
            ^ chunk 4 (u16le 500)
            ^ chunk 4 (u16le 3);
        };
      ];
  }
