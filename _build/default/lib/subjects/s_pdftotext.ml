(** pdftotext (xpdf) stand-in: PDF object scanner and content-stream text
    extractor. The paper's most productive subject for the culling
    strategy (18 bugs for cull vs 10 for pcguard), so the bug population
    here is the largest and skews path-dependent: nested dictionaries,
    stream filters, font-state tracking and text-matrix handling. *)

let source =
  {|
// pdftotext: object scanner + content stream interpreter.
global objects;
global dict_depth;
global in_text;
global font_size;
global font_set;
global tm_x;
global tm_y;
global filters;
global strings_out;

fn starts(p, a, c) {
  return in(p) == a && in(p + 1) == c;
}

fn skip_to(p, ch) {
  while (in(p) != -1 && in(p) != ch) {
    p = p + 1;
  }
  return p;
}

fn parse_number(p, sign) {
  var v = 0;
  while (in(p) >= 48 && in(p) <= 57) {
    v = (v * 10) + (in(p) - 48);
    p = p + 1;
  }
  return v * sign;
}

fn parse_dict(p) {
  // << ... >> possibly nested
  dict_depth = dict_depth + 1;
  check(dict_depth <= 6, 261);          // dictionary nesting overflow
  p = p + 2;
  while (in(p) != -1) {
    if (starts(p, 60, 60) == 1) {
      p = parse_dict(p);
    } else {
      if (starts(p, 62, 62) == 1) {
        dict_depth = dict_depth - 1;
        return p + 2;
      } else {
        if (in(p) == 47 && in(p + 1) == 70 && in(p + 2) == 108) {
          // /Fl(ate) filter name
          filters = filters + 1;
          check(filters <= 4, 262);     // filter chain too long
          p = p + 3;
        } else {
          p = p + 1;
        }
      }
    }
  }
  dict_depth = dict_depth - 1;
  return p;
}

fn handle_tf(size) {
  font_size = size;
  font_set = 1;
  check(font_size >= 0 && font_size <= 1000, 263);  // absurd font size
  return 0;
}

fn handle_td(dx, dy) {
  tm_x = tm_x + dx;
  tm_y = tm_y + dy;
  if (tm_y < -10000 && in_text == 1 && font_set == 0) {
    // text cursor far off-page with no font set: layout engine
    // dereferences a null font (path-dependent state combo)
    bug(264);
  }
  return 0;
}

fn handle_tj(p) {
  // (string) Tj
  var n = 0;
  while (in(p) != 41 && in(p) != -1) {
    if (in(p) == 92) {
      p = p + 1;
    }
    n = n + 1;
    p = p + 1;
    check(n <= 256, 265);               // unterminated string runaway
  }
  strings_out = strings_out + n;
  if (font_set == 1 && font_size == 0 && n > 0) {
    bug(266);                           // glyph scale division by zero size
  }
  return p + 1;
}

fn content_stream(p, end_) {
  while (p < end_ && in(p) != -1) {
    if (starts(p, 66, 84) == 1) {
      // BT
      if (in_text == 1 && dict_depth == 0 && strings_out > 0) {
        bug(267);                       // nested BT after emitted text
      }
      in_text = 1;
      p = p + 2;
    } else {
      if (starts(p, 69, 84) == 1) {
        // ET
        in_text = 0;
        p = p + 2;
      } else {
        if (starts(p, 84, 102) == 1) {
          // Tf: size precedes operator, crude scan backwards-free form:
          // "Tf" then number
          handle_tf(parse_number(p + 2, 1));
          p = p + 2;
        } else {
          if (starts(p, 84, 100) == 1) {
            // Td dx dy (signs allowed)
            var q = p + 2;
            var sx = 1;
            if (in(q) == 45) { sx = 0 - 1; q = q + 1; }
            var dx = parse_number(q, sx);
            q = skip_to(q, 32);
            q = q + 1;
            var sy = 1;
            if (in(q) == 45) { sy = 0 - 1; q = q + 1; }
            var dy = parse_number(q, sy);
            handle_td(dx, dy);
            p = p + 2;
          } else {
            if (in(p) == 40) {
              p = handle_tj(p + 1);
            } else {
              p = p + 1;
            }
          }
        }
      }
    }
  }
  return strings_out;
}

// end-of-document audit: fatal only for one configuration of counters
fn layout_audit() {
  var risk = 0;
  if (strings_out % 4 == 3) { risk = risk + 1; }
  if (filters >= 2) { risk = risk + 2; }
  if (tm_x > 50) { risk = risk + 4; }
  if (in_text == 1) { risk = risk + 8; }
  check(risk != 15, 268);
  return risk;
}

fn main() {
  objects = 0;
  dict_depth = 0;
  in_text = 0;
  font_size = 12;
  font_set = 0;
  tm_x = 0;
  tm_y = 0;
  filters = 0;
  strings_out = 0;
  // "%PDF"
  if (in(0) != 37 || in(1) != 80 || in(2) != 68 || in(3) != 70) {
    return 1;
  }
  var p = 4;
  var guard = 0;
  while (in(p) != -1 && guard < 32) {
    if (starts(p, 60, 60) == 1) {
      p = parse_dict(p);
    } else {
      if (starts(p, 115, 116) == 1 && in(p + 2) == 114) {
        // "str(eam)": content until "end"
        var e = skip_to(p + 3, 101);
        content_stream(p + 3, e);
        p = e + 1;
        objects = objects + 1;
      } else {
        p = p + 1;
      }
    }
    guard = guard + 1;
  }
  layout_audit();
  return objects;
}
|}

let subject : Subject.t =
  {
    name = "pdftotext";
    description = "PDF object scanner and content-stream text extractor";
    source;
    seeds =
      [
        "%PDF<</Fl 9>>str BT Tf12 (hi) ET";
        "%PDF str BT Td5 7 (x)(y) ET";
        "%PDF<<<<>>>>str (abc)";
      ];
    bugs =
      [
        {
          id = 261;
          summary = "dictionary nesting overflow";
          bug_class = Subject.Shallow;
          witness = "%PDF" ^ String.concat "" (List.init 7 (fun _ -> "<<"));
        };
        {
          id = 262;
          summary = "filter chain longer than decoder stack";
          bug_class = Subject.Shallow;
          witness = "%PDF<</Fl/Fl/Fl/Fl/Fl>>";
        };
        {
          id = 263;
          summary = "absurd font size accepted";
          bug_class = Subject.Shallow;
          witness = "%PDF str Tf9999 end";
        };
        {
          id = 264;
          summary = "off-page text cursor with no font selected";
          bug_class = Subject.Path_dependent;
          witness = "%PDF str BT Td0 -20000 end";
        };
        {
          id = 265;
          summary = "unterminated string literal runaway";
          bug_class = Subject.Loop_accumulation;
          witness = "%PDF str (" ^ String.make 300 'a' ^ " nd end";
        };
        {
          id = 266;
          summary = "glyph scaling divides by zero font size";
          bug_class = Subject.Path_dependent;
          witness = "%PDF str BT Tf0 (x) end";
        };
        {
          id = 268;
          summary = "fatal counter configuration in end-of-document audit";
          bug_class = Subject.Path_dependent;
          witness = "%PDF<</Fl/Fl>>str BT Td60 0 (abc)";
        };
        {
          id = 267;
          summary = "nested BT after emitted text";
          bug_class = Subject.Path_dependent;
          witness = "%PDF str BT (q) BT end";
        };
      ];
  }
