(** Benchmark + evaluation harness.

    Part 1 (Bechamel): one micro-benchmark per table/figure of the paper,
    measuring the dominant runtime cost behind that artefact (see the
    per-experiment index in DESIGN.md §3). Part 2: a matrix-scaling
    measurement (the same small matrix at 1 and N worker domains), then
    the full evaluation matrix, printing every table and figure. Scale
    knobs: PATHCOV_FAST=1, PATHCOV_BUDGET, PATHCOV_TRIALS, PATHCOV_ROUNDS,
    PATHFUZZ_JOBS (worker domains for the matrix);
    PATHCOV_SKIP_TABLES=1 runs only the micro-benchmarks. *)

open Bechamel

(* --- shared fixtures --- *)

let gdk = Subjects.Registry.find_exn "gdk"
let jq = Subjects.Registry.find_exn "jq"
let prog_gdk = Subjects.Subject.program gdk
let prog_jq = Subjects.Subject.program jq
let plans_gdk = Pathcov.Ball_larus.of_program prog_gdk
let prepared_gdk = Vm.Interp.prepare prog_gdk

(* Replay benches reuse one pooled execution context per fixture, like a
   campaign does, so they measure the steady-state hot path. *)
let replay_input mode prog prepared input =
  let fb = Pathcov.Feedback.make mode prog in
  let hooks =
    {
      Vm.Interp.no_hooks with
      h_call = fb.Pathcov.Feedback.on_call;
      h_block = fb.Pathcov.Feedback.on_block;
      h_edge = fb.Pathcov.Feedback.on_edge;
      h_ret = fb.Pathcov.Feedback.on_ret;
    }
  in
  let ctx = Vm.Interp.create_ctx ~hooks prepared in
  fun () ->
    fb.Pathcov.Feedback.reset ();
    Pathcov.Coverage_map.clear fb.trace;
    ignore (Vm.Interp.run_ctx ctx ~input);
    Pathcov.Coverage_map.classify fb.trace

let seed_gdk = List.hd gdk.seeds

let tiny_campaign mode () =
  let config =
    {
      Fuzz.Campaign.default_config with
      mode;
      budget = 400;
      rng_seed = 1;
      cmplog = true;
    }
  in
  ignore (Fuzz.Campaign.run ~plans:plans_gdk ~config prog_gdk ~seeds:gdk.seeds)

(* a queue of havoc children for culling/set-ops benches *)
let sample_queue =
  let rng = Fuzz.Rng.create 11 in
  gdk.seeds @ List.init 60 (fun _ -> Fuzz.Mutator.havoc rng seed_gdk)

let bug_sets =
  let mk offset = Fuzz.Stats.bug_set (List.init 40 (fun i -> Vm.Crash.Id (i + offset))) in
  (mk 0, mk 15, mk 30)

let tests =
  [
    (* F1: the compile-time cost of the Ball-Larus pass itself *)
    Test.make ~name:"fig1-ball-larus-pass"
      (Staged.stage (fun () -> ignore (Pathcov.Ball_larus.of_program prog_jq)));
    (* T1/T3: queue bookkeeping — favored-corpus recomputation *)
    Test.make ~name:"table1-table3-favored-corpus"
      (Staged.stage
         (let corpus = Fuzz.Corpus.create () in
          let rng = Fuzz.Rng.create 3 in
          for i = 0 to 199 do
            ignore
              (Fuzz.Corpus.add corpus
                 ~data:(string_of_int i)
                 ~indices:(Array.init 20 (fun _ -> Fuzz.Rng.int rng 4096))
                 ~exec_blocks:(1 + Fuzz.Rng.int rng 500)
                 ~depth:0 ~found_at:i)
          done;
          fun () -> Fuzz.Corpus.recompute_favored corpus));
    (* T2/T6/T7/T8/T10: the campaign loop under each feedback *)
    Test.make ~name:"table2-campaign-path"
      (Staged.stage (tiny_campaign Pathcov.Feedback.Path));
    Test.make ~name:"table2-campaign-edge"
      (Staged.stage (tiny_campaign Pathcov.Feedback.Edge));
    Test.make ~name:"table7-campaign-pathafl"
      (Staged.stage (tiny_campaign Pathcov.Feedback.Pathafl));
    (* F2: queue-size sampling is free; bench the underlying exec+novelty *)
    Test.make ~name:"fig2-exec-novelty-check"
      (Staged.stage
         (let virgin = Pathcov.Coverage_map.create_virgin () in
          let replay = replay_input Pathcov.Feedback.Path prog_gdk prepared_gdk seed_gdk in
          fun () ->
            replay ();
            ignore virgin));
    (* F3: bug-set algebra *)
    Test.make ~name:"fig3-venn-setops"
      (Staged.stage (fun () ->
           let a, b, c = bug_sets in
           ignore (Fuzz.Stats.venn3 a b c)));
    (* T4: afl-showmap-style edge union over a corpus *)
    Test.make ~name:"table4-showmap-edge-union"
      (Staged.stage (fun () -> ignore (Fuzz.Measure.edge_union prog_gdk sample_queue)));
    (* T5: one seed execution under each instrumentation (the paper's
       Appendix A overhead experiment, measured precisely here) *)
    Test.make ~name:"table5-replay-pcguard"
      (Staged.stage (replay_input Pathcov.Feedback.Edge prog_gdk prepared_gdk seed_gdk));
    Test.make ~name:"table5-replay-path"
      (Staged.stage (replay_input Pathcov.Feedback.Path prog_gdk prepared_gdk seed_gdk));
    Test.make ~name:"table5-replay-uninstrumented"
      (Staged.stage
         (let ctx = Vm.Interp.create_ctx prepared_gdk in
          fun () -> ignore (Vm.Interp.run_ctx ctx ~input:seed_gdk)));
    (* T9: crash dedup — stack hashing *)
    Test.make ~name:"table9-crash-top5-hash"
      (Staged.stage
         (let witness =
            match gdk.bugs with
            | (b : Subjects.Subject.bug) :: _ -> b.witness
            | [] -> assert false
          in
          let crash =
            match Vm.Interp.crash_of prog_gdk ~input:witness with
            | Some c -> c
            | None -> assert false
          in
          fun () -> ignore (Vm.Crash.top5_hash crash)));
    (* T10 ablation partner: the culling procedures themselves *)
    Test.make ~name:"table10-edge-preserving-cull"
      (Staged.stage (fun () ->
           ignore (Fuzz.Measure.edge_preserving_cull prog_gdk sample_queue)));
    Test.make ~name:"table10-path-preserving-cull"
      (Staged.stage (fun () ->
           ignore
             (Fuzz.Measure.path_preserving_cull ~plans:plans_gdk prog_gdk sample_queue)));
    (* ablation: probe placement (DESIGN.md section 4.1) *)
    Test.make ~name:"ablation-bl-naive-placement"
      (Staged.stage (fun () ->
           ignore (Pathcov.Ball_larus.of_program ~optimize:false prog_jq)));
    (* ablation: mutation engine throughput (pooled scratch, as in the
       campaign hot loop — [havoc] proper allocates a scratch per call) *)
    Test.make ~name:"ablation-havoc-throughput"
      (Staged.stage
         (let rng = Fuzz.Rng.create 5 in
          let sc = Fuzz.Mutator.create_scratch () in
          fun () -> ignore (Fuzz.Mutator.havoc_into sc rng seed_gdk)));
  ]

let run_benchmarks () =
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  Fmt.pr "== Bechamel micro-benchmarks (one per table/figure) ==@.";
  Fmt.pr "%-36s %14s@." "benchmark" "ns/run";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg [ instance ] elt in
          let est = Analyze.one ols instance raw in
          let ns =
            match Analyze.OLS.estimates est with
            | Some (x :: _) -> x
            | _ -> nan
          in
          Fmt.pr "%-36s %14.1f@." (Test.Elt.name elt) ns)
        (Test.elements test))
    tests;
  Fmt.pr "@."

(* Steady-state interpreter throughput (the BENCH_throughput.json metric,
   at bench scale): execs/sec, blocks/sec and minor words/exec per
   (subject x feedback mode) through a reused execution context. *)
let run_throughput () =
  let subjects = List.filter_map Subjects.Registry.find [ "gdk"; "jq" ] in
  let samples = Experiments.Throughput.grid ~execs:5_000 subjects in
  print_string (Experiments.Throughput.to_table samples);
  Fmt.pr "@."

(* Parallel-runner scaling: wall-clock for the same small matrix at one
   worker domain versus one per core. (The matrix content is identical by
   construction; the determinism test in test_experiments.ml asserts it.) *)
let run_matrix_scaling () =
  let cfg = { Experiments.Config.fast with budget = 1_500; trials = 2 } in
  let subjects =
    List.filter_map Subjects.Registry.find [ "flvmeta"; "imginfo"; "gdk" ]
  in
  let time jobs =
    let t0 = Unix.gettimeofday () in
    ignore (Experiments.Runner.run ~quiet:true ~jobs ~subjects cfg);
    Unix.gettimeofday () -. t0
  in
  let t1 = time 1 in
  let n = Exec.Pool.default_jobs () in
  let tn = time n in
  Fmt.pr "== Matrix scaling (%d tasks) ==@."
    (List.length subjects * 7 * cfg.trials);
  Fmt.pr "jobs=1: %6.2fs    jobs=%d: %6.2fs    speedup: %.2fx@.@." t1 n tn
    (t1 /. tn)

let () =
  run_benchmarks ();
  run_throughput ();
  if Sys.getenv_opt "PATHCOV_SKIP_TABLES" <> Some "1" then begin
    run_matrix_scaling ();
    let cfg = Experiments.Config.of_env () in
    Fmt.pr "== Evaluation matrix (%a) ==@." Experiments.Config.pp cfg;
    let m = Experiments.Runner.run ~jobs:cfg.jobs cfg in
    Fmt.epr "[matrix] %.1fs of fuzzing wall-clock across all cells@."
      (Experiments.Runner.total_wall_s m);
    print_string (Experiments.Tables.all m);
    Fmt.pr "@.== Ablations (DESIGN.md section 4) ==@.";
    print_string (Experiments.Ablations.all cfg)
  end
