(** pathfuzz: command-line front end for the path-aware fuzzing library.

    Subcommands:
    - [subjects]           list the benchmark subjects;
    - [fuzz]               run one fuzzing campaign on a subject
                           (optionally recording a span trace and the
                           engine-metrics registry);
    - [profile]            run one introspected campaign and render the
                           deep profile report: phase wall breakdown,
                           shard utilization and engine metrics;
    - [path-profile]       Ball–Larus path-profile one input (§VII's
                           profiling use of the encoding);
    - [cfg]                print a function's CFG (optionally Graphviz)
                           with path increments;
    - [tables]             regenerate every table and figure of the paper;
    - [bench-throughput]   measure interpreter throughput per
                           (subject x feedback) and write the
                           BENCH_throughput.json telemetry baseline;
    - [bench-campaign]     measure full-campaign throughput (execs/sec,
                           allocation, mutation-vs-VM split) per
                           (subject x feedback) and write
                           BENCH_campaign.json;
    - [stats]              run one observed campaign and render its
                           counter block, snapshot trajectory and event
                           log (the fuzzer_stats / plot_data analogue);
    - [bench-history]      append the current BENCH_*.json cells as dated
                           rows of BENCH_history.jsonl and flag execs/sec
                           regressions against the trailing window. *)

open Cmdliner

let subject_arg =
  let doc = "Benchmark subject name (see `pathfuzz subjects`)." in
  Arg.(value & opt string "motivating" & info [ "s"; "subject" ] ~docv:"NAME" ~doc)

let lookup_subject name =
  if name = "motivating" then Subjects.Motivating.subject
  else
    match Subjects.Registry.find name with
    | Some s -> s
    | None ->
        Fmt.epr "unknown subject %s; try `pathfuzz subjects`@." name;
        exit 2

(* --- subjects --- *)

let subjects_cmd =
  let run () =
    Fmt.pr "%-12s %-9s %-6s %s@." "NAME" "FUNCTIONS" "BUGS" "DESCRIPTION";
    List.iter
      (fun (s : Subjects.Subject.t) ->
        Fmt.pr "%-12s %-9d %-6d %s@." s.name
          (Subjects.Subject.num_functions s)
          (List.length s.bugs) s.description)
      (Subjects.Registry.all @ [ Subjects.Motivating.subject ])
  in
  Cmd.v (Cmd.info "subjects" ~doc:"List benchmark subjects")
    Term.(const run $ const ())

(* --- fuzz --- *)

let fuzzer_of_name rounds = function
  | "path" -> Fuzz.Strategy.path
  | "pcguard" -> Fuzz.Strategy.pcguard
  | "cull" -> Fuzz.Strategy.cull ~rounds ()
  | "cull_r" -> Fuzz.Strategy.cull_r ~rounds ()
  | "cull_p" -> Fuzz.Strategy.cull_p ~rounds ()
  | "opp" -> Fuzz.Strategy.opp
  | "pathafl" -> Fuzz.Strategy.pathafl
  | "afl" -> Fuzz.Strategy.afl
  | "block" -> Fuzz.Strategy.block
  | "ngram2" -> Fuzz.Strategy.ngram 2
  | "ngram4" -> Fuzz.Strategy.ngram 4
  | other ->
      Fmt.epr "unknown fuzzer %s@." other;
      exit 2

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains to fan trials out over (default: PATHFUZZ_JOBS \
           from the environment, else 1). Must be positive. Results are \
           identical at any job count.")

(* 0 or a negative job count used to silently collapse to one worker;
   it is a configuration error and must say so. *)
let resolve_jobs = function
  | None -> (Experiments.Config.of_env ()).jobs
  | Some n when n > 0 -> n
  | Some n ->
      Fmt.epr "pathfuzz: --jobs must be a positive integer, got %d@." n;
      exit 2

let shards_arg =
  Arg.(
    value
    & opt int 0
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Shard each campaign across N worker domains with a \
           deterministic sync schedule (0 = the sequential loop). The \
           merged trajectory is a function of the seed and \
           $(b,--sync-interval) only — byte-identical for every N >= 1.")

let sync_interval_arg =
  Arg.(
    value
    & opt int Fuzz.Shard.default_sync_interval
    & info [ "sync-interval" ] ~docv:"EXECS"
        ~doc:
          "Executions scheduled between shard sync barriers. Part of the \
           sharded trajectory's identity (independent of wall-clock).")

(* Sharding and checkpointing reuse the plain single-phase campaign
   loop; multi-phase strategies (cull*, opp) re-seed corpora between
   phases and have neither a sharded nor a snapshottable equivalent. *)
let plain_mode_of_fuzzer ~flag (fz : Fuzz.Strategy.fuzzer) :
    Pathcov.Feedback.mode =
  match fz.spec with
  | Fuzz.Strategy.Plain mode -> mode
  | _ ->
      Fmt.epr
        "pathfuzz: %s supports plain fuzzers only (path, pcguard, pathafl, \
         afl, block, ngram*), not %s@."
        flag fz.name;
      exit 2

(* A non-positive --sync-interval used to sail past the CLI and die with
   an uncaught Invalid_argument from the sharded runner's own guard; an
   execution-count flag that must be >= 1 is a configuration error and
   gets the same clean stderr + exit 2 treatment as --jobs. *)
let check_positive ~flag n =
  if n < 1 then begin
    Fmt.epr "pathfuzz: %s must be a positive execution count, got %d@." flag n;
    exit 2
  end

(* shared by `fuzz` and `profile` *)
let fuzzer_arg =
  Arg.(
    value
    & opt string "path"
    & info [ "f"; "fuzzer" ] ~docv:"FUZZER"
        ~doc:
          "One of path, pcguard, cull, cull_r, cull_p, opp, pathafl, afl, \
           block, ngram2, ngram4.")

let trial_arg =
  Arg.(value & opt int 1 & info [ "t"; "trial" ] ~docv:"N" ~doc:"Trial seed.")

let rounds_arg =
  Arg.(value & opt int 4 & info [ "rounds" ] ~doc:"Culling rounds.")

let engine_arg =
  Arg.(
    value
    & opt string "interp"
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          (Printf.sprintf
             "Execution engine (%s): $(b,interp) (the reference CFG \
              interpreter), $(b,compiled) (staged compilation of the \
              subject into OCaml closures with the feedback probes baked \
              in), $(b,fused) (compiled plus superblock fusion: single-\
              predecessor chains collapsed into one closure with coalesced \
              fuel burns and folded path increments) or $(b,native) (the \
              fused plan emitted as per-subject OCaml source, compiled \
              out-of-process with ocamlopt, loaded via Dynlink and cached \
              on disk; silently degrades to fused when no toolchain is \
              available). The fuzzing trajectory — queue, coverage, \
              crashes, stdout — is engine-invariant; only throughput \
              changes."
             (String.concat ", " Fuzz.Tracer.engine_names)))

let selective_arg =
  Arg.(
    value
    & flag
    & info [ "selective" ]
        ~doc:
          "Selective tracing: run candidates under a near-null novelty- \
           signal specialisation and re-execute with full instrumentation \
           only on first-seen signals. Decisions are byte-identical to \
           always-on tracing.")

let engine_of_flag engine =
  match Fuzz.Tracer.engine_of_name engine with
  | Some e -> e
  | None ->
      Fmt.epr "pathfuzz: unknown --engine %s (expected %s)@." engine
        (String.concat ", " Fuzz.Tracer.engine_names);
      exit 2

let emit_cache_arg =
  Arg.(
    value
    & opt string ""
    & info [ "emit-cache" ] ~docv:"DIR"
        ~doc:
          "Directory for the native engine's on-disk artifact cache \
           (compiled per-subject units, keyed by content hash). Overrides \
           $(b,PATHFUZZ_EMIT_CACHE); default is a per-user cache dir. \
           Only meaningful with $(b,--engine) native.")

let apply_emit_cache dir = if dir <> "" then Vm.Emit.set_cache_dir dir

let fuzz_cmd =
  let fuzzer = fuzzer_arg in
  let budget =
    Arg.(value & opt int 24_000 & info [ "b"; "budget" ] ~docv:"EXECS" ~doc:"Execution budget.")
  in
  let trial = trial_arg in
  let trials =
    Arg.(
      value
      & opt int 1
      & info [ "n"; "trials" ] ~docv:"N"
          ~doc:"Number of trials (seeds $(b,--trial), $(b,--trial)+1, ...).")
  in
  let rounds = rounds_arg in
  let engine = engine_arg in
  let selective = selective_arg in
  let stats =
    Arg.(
      value
      & flag
      & info [ "stats" ]
          ~doc:
            "Monitor mode: print a periodic status line per stats snapshot \
             on stderr. The fuzzing trajectory is unchanged (the observer \
             never perturbs the campaign).")
  in
  let jsonl =
    Arg.(
      value
      & opt string ""
      & info [ "jsonl" ] ~docv:"FILE"
          ~doc:
            "Stream observer events (snapshots, retains, crashes, pool \
             trials) as JSON lines into FILE (\"-\" for stderr).")
  in
  let checkpoint =
    Arg.(
      value
      & opt string ""
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Write a versioned campaign snapshot (pathfuzz-checkpoint/v1) \
             to FILE, atomically, at each deterministic boundary (cycle \
             boundary, or shard merge barrier with $(b,--shards)) that \
             crosses a multiple of $(b,--checkpoint-every) executions. \
             Plain fuzzers, single trial.")
  in
  let checkpoint_every =
    Arg.(
      value
      & opt int 5000
      & info [ "checkpoint-every" ] ~docv:"EXECS"
          ~doc:"Snapshot cadence for $(b,--checkpoint), in executions.")
  in
  let resume =
    Arg.(
      value
      & opt string ""
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume from a snapshot written by $(b,--checkpoint) instead of \
             importing seeds. The run's subject, fuzzer, seed, budget and \
             sync schedule must match the snapshot's; the resumed \
             trajectory is byte-identical to the uninterrupted run's.")
  in
  let trace_file =
    Arg.(
      value
      & opt string ""
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record the campaign's span trace (planning, mutation, \
             execution, replays, triage, merges, compiles, checkpoints) \
             and write it to FILE as Chrome trace-event JSON — loadable \
             in chrome://tracing or Perfetto, one track per shard. \
             Observation-only: stdout is byte-identical with or without \
             this flag. Single trial.")
  in
  let metrics_file =
    Arg.(
      value
      & opt string ""
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write the engine-metrics registry (compile cache and walls, \
             rollbacks, fusion shape, batch and dirty-reset histograms, \
             barrier waits, checkpoint costs) to FILE as one JSON object \
             (\"-\" for stderr). Observation-only; single trial.")
  in
  let run subject fuzzer budget trial trials rounds engine selective
      emit_cache jobs shards sync_interval stats jsonl checkpoint
      checkpoint_every resume trace_file metrics_file =
    let s = lookup_subject subject in
    let fz = fuzzer_of_name rounds fuzzer in
    let engine = engine_of_flag engine in
    apply_emit_cache emit_cache;
    let trials = max 1 trials in
    let jobs = resolve_jobs jobs in
    if shards < 0 then begin
      Fmt.epr "pathfuzz: --shards must be >= 0, got %d@." shards;
      exit 2
    end;
    check_positive ~flag:"--sync-interval" sync_interval;
    check_positive ~flag:"--checkpoint-every" checkpoint_every;
    let use_ck = checkpoint <> "" || resume <> "" in
    if use_ck && trials > 1 then begin
      Fmt.epr
        "pathfuzz: --checkpoint/--resume snapshot a single campaign; run \
         one trial per invocation (got --trials %d)@."
        trials;
      exit 2
    end;
    let introspect = trace_file <> "" || metrics_file <> "" in
    if introspect && trials > 1 then begin
      Fmt.epr
        "pathfuzz: --trace/--metrics record a single campaign; run one \
         trial per invocation (got --trials %d)@."
        trials;
      exit 2
    end;
    let shard_mode =
      if shards > 0 then Some (plain_mode_of_fuzzer ~flag:"--shards" fz)
      else None
    in
    (* Everything a snapshot identifies this run by; --resume refuses a
       file whose recorded identity differs (sync_interval 0 marks the
       sequential loop). *)
    let expected_id () : Fuzz.Checkpoint.config_id =
      let mode =
        match shard_mode with
        | Some m -> m
        | None -> plain_mode_of_fuzzer ~flag:"--checkpoint/--resume" fz
      in
      let d = Fuzz.Campaign.default_config in
      {
        Fuzz.Checkpoint.subject = s.name;
        fuzzer = fz.name;
        mode = Pathcov.Feedback.mode_name mode;
        cmplog = fz.cmplog;
        rng_seed = trial;
        budget;
        fuel = d.fuel;
        max_depth = d.max_depth;
        map_size_log2 = d.map_size_log2;
        max_queue = d.max_queue;
        sync_interval = (if shards > 0 then sync_interval else 0);
      }
    in
    (* The campaign's observer, exposed so the checkpoint save closure
       can charge write costs to the metrics registry and so the trace/
       metrics files can be written after the run. Only set when
       introspection is on (single trial, so a single cell suffices). *)
    let obs_out : Obs.Observer.t option ref = ref None in
    let ck_sink =
      if checkpoint = "" then None
      else
        Some
          {
            Fuzz.Checkpoint.every = checkpoint_every;
            subject = s.name;
            fuzzer = fz.name;
            save =
              (fun ck ->
                let t0 = Unix.gettimeofday () in
                let bytes = Fuzz.Checkpoint.write_file ~path:checkpoint ck in
                (match !obs_out with
                | Some obs ->
                    let m = obs.Obs.Observer.metrics in
                    Obs.Metrics.bump
                      (Obs.Metrics.counter m "checkpoint.writes");
                    Obs.Metrics.observe
                      (Obs.Metrics.hist m "checkpoint.bytes")
                      bytes;
                    Obs.Metrics.add_wall
                      (Obs.Metrics.wall m "checkpoint.write_s")
                      (Unix.gettimeofday () -. t0)
                | None -> ());
                Fmt.epr "[checkpoint] wrote %s (%d bytes) at %d execs@."
                  checkpoint bytes ck.Fuzz.Checkpoint.progress.execs);
          }
    in
    let resume_ck =
      if resume = "" then None
      else
        match Fuzz.Checkpoint.read_file resume with
        | Error msg ->
            Fmt.epr "pathfuzz: cannot resume from %s: %s@." resume msg;
            exit 2
        | Ok ck -> (
            match Fuzz.Checkpoint.check_compat ~expected:(expected_id ()) ck with
            | Ok () ->
                Fmt.epr "[checkpoint] resuming %s at %d execs@." resume
                  ck.Fuzz.Checkpoint.progress.execs;
                Some ck
            | Error msg ->
                Fmt.epr
                  "pathfuzz: --resume %s does not match this run's config: \
                   %s@."
                  resume msg;
                exit 2)
    in
    (* force the plain-fuzzer check even when only --checkpoint is given *)
    if use_ck && shard_mode = None then ignore (expected_id ());
    (* worker/shard counts go to stderr: stdout must be identical at any
       --jobs or --shards value so runs can be diffed *)
    Fmt.pr "fuzzing %s with %s for %d execs (%d trial%s from seed %d)...@."
      s.name fz.name budget trials
      (if trials = 1 then "" else "s")
      trial;
    if jobs > 1 then Fmt.epr "[fuzz] %d worker domains@." jobs;
    if shards > 0 then
      Fmt.epr "[fuzz] %d shards, sync every %d execs@." shards sync_interval;
    (* engine/selective are trajectory-invisible, so they stay off stdout
       (runs must diff clean across engines) and out of the checkpoint
       identity (snapshots resume under either engine) *)
    if engine <> Fuzz.Tracer.Interp || selective then
      Fmt.epr "[fuzz] engine=%s%s@."
        (Fuzz.Tracer.engine_name engine)
        (if selective then " +selective" else "");
    (* Observability: status/JSONL sinks never touch stdout, so observed
       and unobserved runs produce the same diffable report. The sink is
       mutex-wrapped and shared; each trial gets its own counter block. *)
    let jsonl_oc =
      match jsonl with
      | "" -> None
      | "-" -> Some stderr
      | path -> Some (open_out path)
    in
    let base_sink =
      let sinks =
        (if stats then [ Obs.Sink.status prerr_endline ] else [])
        @ match jsonl_oc with Some oc -> [ Obs.Sink.jsonl oc ] | None -> []
      in
      match sinks with
      | [] -> None
      | s :: rest -> Some (Obs.Sink.locked (List.fold_left Obs.Sink.tee s rest))
    in
    (* Deep introspection (--trace/--metrics): the trial's observer gets
       a wall clock and, for --trace, a span trace with one track per
       shard (track 0 = coordinator / sequential loop). Both are
       observation-only under the zero-perturbation rule, so stdout
       still diffs clean against an uninstrumented run (make
       profile-check holds this). *)
    let mk_obs ~tracks () : Obs.Observer.t option =
      if not introspect then
        Option.map (fun sink -> Obs.Observer.create ~sink ()) base_sink
      else begin
        let clock = Unix.gettimeofday in
        let trace =
          if trace_file = "" then None
          else Some (Obs.Trace.create ~clock ~tracks ())
        in
        let obs = Obs.Observer.create ~clock ?trace ?sink:base_sink () in
        obs_out := Some obs;
        Some obs
      end
    in
    let results =
      match shard_mode with
      | Some mode ->
          (* sharded campaigns parallelise inside each trial, so trials
             run sequentially; the worker width comes from --shards *)
          Array.init trials (fun i ->
              let prog = Subjects.Subject.compile_fresh s in
              let plans = Pathcov.Ball_larus.of_program prog in
              let obs = mk_obs ~tracks:(shards + 1) () in
              let cfg =
                {
                  Fuzz.Shard.base =
                    {
                      Fuzz.Campaign.default_config with
                      mode;
                      budget;
                      rng_seed = trial + i;
                      cmplog = fz.cmplog;
                      engine;
                      selective;
                    };
                  shards;
                  sync_interval;
                }
              in
              let r =
                Fuzz.Shard.run ~plans ?obs ?checkpoint:ck_sink
                  ?resume:resume_ck cfg prog ~seeds:s.seeds
              in
              Fmt.epr
                "[shard] trial %d: %d epochs, %d items, %d duplicates \
                 dropped at barriers@."
                (trial + i) r.epochs r.items r.dup_dropped;
              Fuzz.Strategy.of_campaign fz.name r.campaign)
      | None when use_ck ->
          (* snapshot plumbing needs Campaign.run directly; the config is
             exactly Strategy.run's Plain path, so the trajectory — and
             stdout — match a run without these flags byte for byte *)
          [|
            (let prog = Subjects.Subject.compile_fresh s in
             let plans = Pathcov.Ball_larus.of_program prog in
             let obs = mk_obs ~tracks:1 () in
             let mode = plain_mode_of_fuzzer ~flag:"--checkpoint/--resume" fz in
             let config =
               {
                 Fuzz.Campaign.default_config with
                 mode;
                 budget;
                 rng_seed = trial;
                 cmplog = fz.cmplog;
                 engine;
                 selective;
               }
             in
             let r =
               Fuzz.Campaign.run ~plans ?obs ~config ?checkpoint:ck_sink
                 ?resume:resume_ck prog ~seeds:s.seeds
             in
             Fuzz.Strategy.of_campaign fz.name r);
          |]
      | None ->
          Exec.Pool.map ~jobs ?sink:base_sink trials (fun i ->
              (* per-worker program and plans: see lib/exec *)
              let prog = Subjects.Subject.compile_fresh s in
              let plans = Pathcov.Ball_larus.of_program prog in
              let obs = mk_obs ~tracks:1 () in
              Fuzz.Strategy.run ~plans ?obs ~engine ~selective ~budget
                ~trial_seed:(trial + i) fz prog ~seeds:s.seeds)
    in
    (match jsonl_oc with
    | Some oc ->
        flush oc;
        if jsonl <> "-" then close_out oc
    | None -> ());
    (* introspection artifacts go to their own files (stderr notes only):
       stdout stays diffable against a run without these flags *)
    (match !obs_out with
    | None -> ()
    | Some obs ->
        (match (trace_file, obs.Obs.Observer.trace) with
        | "", _ | _, None -> ()
        | path, Some tr ->
            let oc = open_out path in
            let track_names i =
              if i = 0 then
                Some (if shards > 0 then "coordinator" else "campaign")
              else Some (Printf.sprintf "shard %d" (i - 1))
            in
            Obs.Trace.to_chrome ~track_names tr oc;
            close_out oc;
            Fmt.epr "[fuzz] wrote span trace %s@." path);
        if metrics_file <> "" then begin
          let json = Obs.Metrics.to_json obs.Obs.Observer.metrics in
          if metrics_file = "-" then Fmt.epr "%s@." json
          else begin
            let oc = open_out metrics_file in
            output_string oc json;
            output_char oc '\n';
            close_out oc;
            Fmt.epr "[fuzz] wrote metrics %s@." metrics_file
          end
        end);
    Array.iteri
      (fun i (r : Fuzz.Strategy.run_result) ->
        if trials > 1 then Fmt.pr "@.-- trial %d --@." (trial + i);
        Fmt.pr "executions:      %d@." r.execs;
        Fmt.pr "queue size:      %d@." r.queue_size;
        Fmt.pr "total crashes:   %d (hangs: %d)@." r.triage.total_crashes
          r.triage.total_hangs;
        Fmt.pr "unique crashes:  %d (stack-hash top-5)@."
          (Fuzz.Triage.unique_crashes r.triage);
        Fmt.pr "unique bugs:     %d / %d known@."
          (Fuzz.Triage.unique_bugs r.triage)
          (List.length s.bugs);
        List.iter
          (fun id ->
            let witness =
              Option.value ~default:"" (Fuzz.Triage.bug_witness r.triage id)
            in
            let summary =
              match id with
              | Vm.Crash.Id n -> begin
                  match
                    List.find_opt
                      (fun (b : Subjects.Subject.bug) -> b.id = n)
                      s.bugs
                  with
                  | Some b -> b.summary
                  | None -> "?"
                end
              | Vm.Crash.At_site _ -> "organic crash"
            in
            Fmt.pr "  %a: %s (witness %d bytes)@." Vm.Crash.pp_identity id
              summary (String.length witness))
          (Fuzz.Triage.bugs r.triage))
      results
  in
  Cmd.v (Cmd.info "fuzz" ~doc:"Run one or more fuzzing campaigns")
    Term.(
      const run $ subject_arg $ fuzzer $ budget $ trial $ trials $ rounds
      $ engine $ selective $ emit_cache_arg $ jobs_arg $ shards_arg
      $ sync_interval_arg $ stats $ jsonl $ checkpoint $ checkpoint_every
      $ resume $ trace_file $ metrics_file)

(* --- profile (deep campaign introspection) --- *)

let profile_cmd =
  let budget =
    Arg.(
      value
      & opt int 8_000
      & info [ "b"; "budget" ] ~docv:"EXECS" ~doc:"Execution budget.")
  in
  let deterministic =
    Arg.(
      value
      & flag
      & info [ "deterministic" ]
          ~doc:
            "Replace the wall clock with a virtual tick counter (+1 per \
             clock reading): every wall in the report becomes a \
             deterministic count of clock reads, so the whole report is \
             reproducible byte for byte (the golden-test mode). \
             Sequential loop only — ticks are not meaningful across \
             domains.")
  in
  let run subject fuzzer budget trial rounds engine selective emit_cache
      shards sync_interval deterministic =
    let s = lookup_subject subject in
    let fz = fuzzer_of_name rounds fuzzer in
    let engine = engine_of_flag engine in
    apply_emit_cache emit_cache;
    if shards < 0 then begin
      Fmt.epr "pathfuzz: --shards must be >= 0, got %d@." shards;
      exit 2
    end;
    check_positive ~flag:"--sync-interval" sync_interval;
    if deterministic && shards > 0 then begin
      Fmt.epr
        "pathfuzz: --deterministic profiles the sequential loop (the \
         virtual tick clock is single-domain); drop --shards@.";
      exit 2
    end;
    let clock =
      if deterministic then (
        let t = ref 0. in
        fun () ->
          t := !t +. 1.;
          !t)
      else Unix.gettimeofday
    in
    let trace = Obs.Trace.create ~clock ~tracks:(shards + 1) () in
    let obs = Obs.Observer.create ~clock ~trace () in
    let prog = Subjects.Subject.compile_fresh s in
    let plans = Pathcov.Ball_larus.of_program prog in
    (match shards with
    | 0 ->
        ignore
          (Fuzz.Strategy.run ~plans ~obs ~engine ~selective ~budget
             ~trial_seed:trial fz prog ~seeds:s.seeds)
    | _ ->
        let mode = plain_mode_of_fuzzer ~flag:"--shards" fz in
        let cfg =
          {
            Fuzz.Shard.base =
              {
                Fuzz.Campaign.default_config with
                mode;
                budget;
                rng_seed = trial;
                cmplog = fz.cmplog;
                engine;
                selective;
              };
            shards;
            sync_interval;
          }
        in
        ignore (Fuzz.Shard.run ~plans ~obs cfg prog ~seeds:s.seeds));
    let title =
      Printf.sprintf "pathfuzz profile: %s / %s, budget %d, trial %d%s%s"
        s.name fz.name budget trial
        (if shards > 0 then Printf.sprintf ", shards %d" shards else "")
        (if deterministic then ", virtual clock" else "")
    in
    print_string
      (Experiments.Profile_report.render ~title ~with_wall:true ~shards obs)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run one campaign under the span tracer and engine-metrics \
          registry and render the deep introspection report (phase \
          walls, shard utilization, engine metrics, counters)")
    Term.(
      const run $ subject_arg $ fuzzer_arg $ budget $ trial_arg $ rounds_arg
      $ engine_arg $ selective_arg $ emit_cache_arg $ shards_arg
      $ sync_interval_arg $ deterministic)

(* --- path-profile --- *)

let path_profile_cmd =
  let input =
    Arg.(value & opt string "" & info [ "i"; "input" ] ~docv:"STRING" ~doc:"Input to profile.")
  in
  let top = Arg.(value & opt int 5 & info [ "top" ] ~doc:"Paths to show per function.") in
  let run subject input top =
    let s = lookup_subject subject in
    let prog = Subjects.Subject.program s in
    let plans = Pathcov.Ball_larus.of_program prog in
    (* count committed paths per function: a classic path profile *)
    let counts : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
    let regs = ref [] in
    let bump fid pid =
      let k = (fid, pid) in
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
    in
    let hooks =
      {
        Vm.Interp.no_hooks with
        h_call = (fun _ -> regs := 0 :: !regs);
        h_edge =
          (fun fid src dst ->
            match Pathcov.Ball_larus.on_edge plans.plans.(fid) ~src ~dst with
            | None -> ()
            | Some (Pathcov.Ball_larus.Add k) -> begin
                match !regs with [] -> () | r :: rest -> regs := (r + k) :: rest
              end
            | Some (Pathcov.Ball_larus.Commit_back { add; reset }) -> begin
                match !regs with
                | [] -> ()
                | r :: rest ->
                    bump fid (r + add);
                    regs := reset :: rest
              end);
        h_ret =
          (fun fid block ->
            match !regs with
            | [] -> ()
            | r :: rest ->
                bump fid (r + Pathcov.Ball_larus.on_ret plans.plans.(fid) ~block);
                regs := rest);
      }
    in
    let out = Vm.Interp.run ~hooks prog ~input in
    (match out.status with
    | Vm.Interp.Finished v -> Fmt.pr "finished, main returned %a@." Fmt.(option int) v
    | Vm.Interp.Crashed c -> Fmt.pr "crashed: %a@." Vm.Crash.pp c
    | Vm.Interp.Hung -> Fmt.pr "hung@.");
    Array.iteri
      (fun fid (f : Minic.Ir.func) ->
        let here =
          Hashtbl.fold
            (fun (fid', pid) n acc -> if fid' = fid then (pid, n) :: acc else acc)
            counts []
          |> List.sort (fun (_, a) (_, b) -> compare b a)
        in
        if here <> [] then begin
          Fmt.pr "@[<v 2>%s (%d acyclic paths):@," f.name
            plans.plans.(fid).num_paths;
          List.iteri
            (fun i (pid, n) ->
              if i < top then
                Fmt.pr "path %3d x%-5d  %s@," pid n
                  (String.concat "->"
                     (List.map string_of_int
                        (Pathcov.Ball_larus.regenerate plans.plans.(fid) pid))))
            here;
          Fmt.pr "@]@."
        end)
      prog.funcs
  in
  Cmd.v
    (Cmd.info "path-profile"
       ~doc:"Path-profile one input (Ball-Larus as a profiler)")
    Term.(const run $ subject_arg $ input $ top)

(* --- cfg --- *)

let cfg_cmd =
  let fname = Arg.(value & opt string "main" & info [ "fn" ] ~doc:"Function name.") in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz.") in
  let run subject fname dot =
    let s = lookup_subject subject in
    let prog = Subjects.Subject.program s in
    let f = Minic.Ir.func_exn prog fname in
    let plan = Pathcov.Ball_larus.of_func f in
    if dot then
      let edge_label (src, dst) =
        match Pathcov.Ball_larus.on_edge plan ~src ~dst with
        | Some (Pathcov.Ball_larus.Add k) -> Some (Printf.sprintf "r += %d" k)
        | Some (Pathcov.Ball_larus.Commit_back { add; reset }) ->
            Some (Printf.sprintf "commit r+%d; r := %d" add reset)
        | None -> None
      in
      print_string (Minic.Dot.to_dot ~edge_label f)
    else begin
      Fmt.pr "%a@." Minic.Pretty.pp_func f;
      Fmt.pr "acyclic paths: %d, probes: %d, back edges: %d@." plan.num_paths
        plan.probes
        (List.length plan.back_edges)
    end
  in
  Cmd.v (Cmd.info "cfg" ~doc:"Show a function's CFG and path-instrumentation plan")
    Term.(const run $ subject_arg $ fname $ dot)

(* --- tables --- *)

let tables_cmd =
  let fast = Arg.(value & flag & info [ "fast" ] ~doc:"Smoke-test scale.") in
  let run fast jobs =
    let cfg =
      if fast then Experiments.Config.fast else Experiments.Config.of_env ()
    in
    let cfg =
      match jobs with None -> cfg | Some _ -> { cfg with jobs = resolve_jobs jobs }
    in
    Fmt.pr "running the evaluation matrix (%a)...@." Experiments.Config.pp cfg;
    let m = Experiments.Runner.run ~jobs:cfg.jobs cfg in
    Fmt.epr "[matrix] %.1fs of fuzzing wall-clock across all cells@."
      (Experiments.Runner.total_wall_s m);
    print_string (Experiments.Tables.all m)
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Regenerate every table and figure of the paper")
    Term.(const run $ fast $ jobs_arg)

(* --- bench-throughput --- *)

let bench_throughput_cmd =
  let subjects =
    Arg.(
      value
      & opt string "cflow,sqlite3,gdk,jq"
      & info [ "subjects" ] ~docv:"NAMES"
          ~doc:"Comma-separated subjects to measure.")
  in
  let execs =
    Arg.(
      value
      & opt int 20_000
      & info [ "execs" ] ~docv:"N" ~doc:"Executions measured per cell.")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_throughput.json"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Output JSON path (\"-\" prints the JSON to stdout).")
  in
  let smoke =
    Arg.(
      value
      & flag
      & info [ "smoke" ]
          ~doc:
            "Tiny-budget self-check: one subject, 50 execs per cell — \
             exercises the telemetry path in seconds (used by dune runtest).")
  in
  let note =
    Arg.(
      value
      & opt string ""
      & info [ "note" ] ~docv:"TEXT"
          ~doc:
            "Free-form note embedded in the JSON (e.g. the honest outcome \
             of a perf target).")
  in
  let engines =
    Arg.(
      value
      & opt string ""
      & info [ "engines" ] ~docv:"NAMES"
          ~doc:
            (Printf.sprintf
               "Comma-separated engines to measure (subset of %s; default: \
                all). The filter is recorded in the JSON note so a partial \
                re-measurement is never mistaken for a full grid."
               (String.concat ", " Experiments.Throughput.engines)))
  in
  let run subjects execs out smoke note engines emit_cache =
    apply_emit_cache emit_cache;
    let names =
      if smoke then [ "gdk" ]
      else String.split_on_char ',' subjects |> List.map String.trim
    in
    let execs = if smoke then 50 else max 1 execs in
    let subjects = List.map lookup_subject names in
    let engine_filter =
      match engines with
      | "" -> None
      | s ->
          let l = String.split_on_char ',' s |> List.map String.trim in
          List.iter
            (fun e ->
              if not (List.mem e Experiments.Throughput.engines) then begin
                Fmt.epr "pathfuzz: unknown --engines entry %s (expected %s)@."
                  e
                  (String.concat ", " Experiments.Throughput.engines);
                exit 2
              end)
            l;
          Some l
    in
    let note =
      match engine_filter with
      | None -> note
      | Some l ->
          let tag =
            Printf.sprintf "engines filter: %s" (String.concat "," l)
          in
          if note = "" then tag else note ^ "; " ^ tag
    in
    let samples =
      Experiments.Throughput.grid ?engines:engine_filter ~execs subjects
    in
    (* table to stderr: stdout stays machine-readable when out = "-" *)
    Fmt.epr "%s@." (Experiments.Throughput.to_table samples);
    (* regeneration keeps the recorded baseline trajectory of the
       existing file, so `make bench` never erases it *)
    let baseline_raw =
      if out = "-" then None
      else Experiments.Throughput.extract_cells ~key:"baseline_cells" out
    in
    (match baseline_raw with
    | Some raw ->
        (match
           Experiments.Throughput.speedup_vs_baseline ~baseline_raw:raw samples
         with
        | Some (g, l) ->
            Fmt.epr "%s@." (Experiments.Throughput.speedup_report g l)
        | None -> ());
        (match
           Experiments.Throughput.speedup_for ~mode:"path" ~engine:"fused"
             ~baseline_raw:raw samples
         with
        | Some (g, l) ->
            Fmt.epr "%s@."
              (Experiments.Throughput.speedup_report ~engine:"fused" g l)
        | None -> ());
        (match Experiments.Throughput.speedups_by_mode ~baseline_raw:raw samples with
        | [] -> ()
        | by_mode ->
            Fmt.epr "  per-mode geomeans vs baseline interp:@.";
            List.iter
              (fun (mode, engine, g) ->
                Fmt.epr "    %-8s %-9s %.2fx@." mode engine g)
              by_mode)
    | None -> ());
    let json = Experiments.Throughput.to_json ~note ?baseline_raw samples in
    if out = "-" then print_string json
    else begin
      let oc = open_out out in
      output_string oc json;
      close_out oc;
      Fmt.epr "[bench-throughput] wrote %s (%d cells)@." out
        (List.length samples)
    end
  in
  Cmd.v
    (Cmd.info "bench-throughput"
       ~doc:
         "Measure execs/sec, blocks/sec and allocation per execution across \
          the (subject x feedback) grid")
    Term.(
      const run $ subjects $ execs $ out $ smoke $ note $ engines
      $ emit_cache_arg)

(* --- bench-campaign --- *)

let bench_campaign_cmd =
  let subjects =
    Arg.(
      value
      & opt string "cflow,sqlite3,gdk,jq"
      & info [ "subjects" ] ~docv:"NAMES"
          ~doc:"Comma-separated subjects to measure.")
  in
  let budget =
    Arg.(
      value
      & opt int 20_000
      & info [ "b"; "budget" ] ~docv:"EXECS"
          ~doc:"Execution budget per campaign cell.")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_campaign.json"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Output JSON path (\"-\" prints the JSON to stdout).")
  in
  let baseline =
    Arg.(
      value
      & opt string ""
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Embed FILE's \"cells\" as this run's \"baseline_cells\" (a \
             prior pathfuzz-campaign/v1 measurement). Without this flag, \
             an existing output file's baseline_cells are carried forward.")
  in
  let note =
    Arg.(
      value
      & opt string ""
      & info [ "note" ] ~docv:"TEXT" ~doc:"Free-form note embedded in the JSON.")
  in
  let smoke =
    Arg.(
      value
      & flag
      & info [ "smoke" ]
          ~doc:
            "Tiny-budget self-check: one subject, 400-exec campaigns — \
             exercises the full campaign telemetry path in seconds (used \
             by dune runtest).")
  in
  let run subjects budget out baseline note smoke shards sync_interval =
    let names =
      if smoke then [ "gdk" ]
      else String.split_on_char ',' subjects |> List.map String.trim
    in
    let budget = if smoke then 400 else max 1 budget in
    let subjects = List.map lookup_subject names in
    if shards < 0 then begin
      Fmt.epr "pathfuzz: --shards must be >= 0, got %d@." shards;
      exit 2
    end;
    check_positive ~flag:"--sync-interval" sync_interval;
    let samples =
      if shards = 0 then Experiments.Campaign_bench.grid ~budget subjects
      else begin
        (* sharded bench: measure --shards 1 as the reference, then the
           requested width, and hold the determinism contract between
           them (merged coverage map, queue and crash set fingerprints
           must be byte-identical) *)
        let base =
          Experiments.Campaign_bench.shard_grid ~budget ~shards:1
            ~sync_interval subjects
        in
        let wide =
          if shards = 1 then base
          else
            Experiments.Campaign_bench.shard_grid ~budget ~shards
              ~sync_interval subjects
        in
        let mismatches =
          List.filter
            (fun ((s1, f1), (_, fn)) ->
              ignore (s1 : Experiments.Campaign_bench.sample);
              f1 <> fn)
            (List.combine base wide)
        in
        List.iter
          (fun (((s1 : Experiments.Campaign_bench.sample), _), _) ->
            Fmt.epr
              "[bench-campaign] DETERMINISM MISMATCH %s/%s: --shards %d \
               diverged from --shards 1@."
              s1.subject s1.mode shards)
          mismatches;
        let base_s = List.map fst base and wide_s = List.map fst wide in
        Fmt.epr
          "[bench-campaign] determinism: merged coverage/queue/crash \
           fingerprints %s across --shards 1 and --shards %d (%d cells)@."
          (if mismatches = [] then "identical" else "DIVERGED")
          shards (List.length base_s);
        if shards > 1 then
          Fmt.epr
            "[bench-campaign] speedup: %.2fx execs/sec geomean at --shards \
             %d over --shards 1 (sync every %d execs)@."
            (Experiments.Campaign_bench.speedup_geomean ~base:base_s wide_s)
            shards sync_interval;
        if mismatches <> [] then exit 1;
        if shards = 1 then base_s else base_s @ wide_s
      end
    in
    Fmt.epr "%s@." (Experiments.Campaign_bench.to_table samples);
    let baseline_raw =
      if baseline <> "" then
        Experiments.Throughput.extract_cells ~key:"cells" baseline
      else if out <> "-" then
        Experiments.Throughput.extract_cells ~key:"baseline_cells" out
      else None
    in
    let json = Experiments.Campaign_bench.to_json ~note ?baseline_raw samples in
    if out = "-" then print_string json
    else begin
      let oc = open_out out in
      output_string oc json;
      close_out oc;
      Fmt.epr "[bench-campaign] wrote %s (%d cells)@." out (List.length samples)
    end
  in
  Cmd.v
    (Cmd.info "bench-campaign"
       ~doc:
         "Measure full-campaign execs/sec, allocation per execution and the \
          mutation-vs-VM time split across the (subject x feedback) grid")
    Term.(
      const run $ subjects $ budget $ out $ baseline $ note $ smoke
      $ shards_arg $ sync_interval_arg)

(* --- stats --- *)

let stats_cmd =
  let fuzzer =
    Arg.(
      value
      & opt string "path"
      & info [ "f"; "fuzzer" ] ~docv:"FUZZER"
          ~doc:"Fuzzer configuration (see `pathfuzz fuzz`).")
  in
  let budget =
    Arg.(
      value
      & opt int 8_000
      & info [ "b"; "budget" ] ~docv:"EXECS" ~doc:"Execution budget.")
  in
  let trial =
    Arg.(value & opt int 1 & info [ "t"; "trial" ] ~docv:"N" ~doc:"Trial seed.")
  in
  let rounds =
    Arg.(value & opt int 4 & info [ "rounds" ] ~doc:"Culling rounds.")
  in
  let events =
    Arg.(
      value
      & opt int 40
      & info [ "events" ] ~docv:"N" ~doc:"Newest non-snapshot events to show.")
  in
  let jsonl =
    Arg.(
      value
      & opt string ""
      & info [ "jsonl" ] ~docv:"FILE"
          ~doc:
            "Also dump the retained event stream as JSON lines into FILE \
             (\"-\" for stdout, after the tables).")
  in
  let run subject fuzzer budget trial rounds events jsonl =
    let s = lookup_subject subject in
    let fz = fuzzer_of_name rounds fuzzer in
    let prog = Subjects.Subject.compile_fresh s in
    let plans = Pathcov.Ball_larus.of_program prog in
    (* A ring sink retains the event log in memory; no clock, so the
       report is deterministic for (subject, fuzzer, budget, trial). *)
    let ring = Obs.Sink.create_ring ~capacity:8192 () in
    let obs = Obs.Observer.create ~sink:(Obs.Sink.ring ring) () in
    Fmt.pr "stats: %s / %s, budget %d, trial seed %d@." s.name fz.name budget
      trial;
    let r =
      Fuzz.Strategy.run ~plans ~obs ~budget ~trial_seed:trial fz prog
        ~seeds:s.seeds
    in
    print_string (Experiments.Obs_render.counters_table obs.counters);
    print_string
      (Experiments.Obs_render.snapshots_table (Obs.Observer.snapshots obs));
    print_string
      (Experiments.Obs_render.events_table ~limit:events
         (Obs.Sink.ring_events ring));
    if Obs.Sink.ring_dropped ring > 0 then
      Fmt.pr "(%d events dropped by the ring buffer)@."
        (Obs.Sink.ring_dropped ring);
    Fmt.pr "@.bugs found: %d, unique crashes: %d, queue: %d@."
      (Fuzz.Triage.unique_bugs r.triage)
      (Fuzz.Triage.unique_crashes r.triage)
      r.queue_size;
    match jsonl with
    | "" -> ()
    | "-" -> Experiments.Obs_render.dump_jsonl stdout (Obs.Sink.ring_events ring)
    | path ->
        let oc = open_out path in
        Experiments.Obs_render.dump_jsonl oc (Obs.Sink.ring_events ring);
        close_out oc;
        Fmt.epr "[stats] wrote %s@." path
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run one observed campaign and render its counters, snapshot \
          trajectory and event log")
    Term.(
      const run $ subject_arg $ fuzzer $ budget $ trial $ rounds $ events
      $ jsonl)

(* --- bench-history --- *)

let bench_history_cmd =
  let history =
    Arg.(
      value
      & opt string "BENCH_history.jsonl"
      & info [ "history" ] ~docv:"FILE" ~doc:"Trend history file (JSONL).")
  in
  let throughput =
    Arg.(
      value
      & opt string "BENCH_throughput.json"
      & info [ "throughput" ] ~docv:"FILE"
          ~doc:"Throughput bench to ingest (skipped when missing).")
  in
  let campaign =
    Arg.(
      value
      & opt string "BENCH_campaign.json"
      & info [ "campaign" ] ~docv:"FILE"
          ~doc:"Campaign bench to ingest (skipped when missing).")
  in
  let date =
    Arg.(
      value
      & opt string ""
      & info [ "date" ] ~docv:"YYYY-MM-DD"
          ~doc:"Date stamp for the appended rows (default: today, UTC).")
  in
  let label =
    Arg.(
      value
      & opt string ""
      & info [ "label" ] ~docv:"TEXT"
          ~doc:"Free-form tag recorded with the appended rows (e.g. a PR).")
  in
  let threshold =
    Arg.(
      value
      & opt float 20.
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:
            "Regression threshold: flag cells whose execs/sec fall more \
             than PCT percent below the trailing-window mean.")
  in
  let window =
    Arg.(
      value
      & opt int 4
      & info [ "window" ] ~docv:"N"
          ~doc:"Trailing history rows (per source) to compare against.")
  in
  let check_only =
    Arg.(
      value
      & flag
      & info [ "check-only" ]
          ~doc:"Run the regression check without appending to the history.")
  in
  let run history throughput campaign date label threshold window check_only =
    let date =
      if date <> "" then date
      else
        let tm = Unix.gmtime (Unix.time ()) in
        Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
          (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
    in
    let machine =
      Printf.sprintf "nproc=%d ocaml=%s"
        (Domain.recommended_domain_count ())
        Sys.ocaml_version
    in
    let sources =
      List.filter_map
        (fun (source, path) ->
          match Experiments.Bench_history.cells_of_bench path with
          | None -> None
          | Some cells ->
              Some
                { Experiments.Bench_history.date; source; label; machine; cells })
        [ ("throughput", throughput); ("campaign", campaign) ]
    in
    if sources = [] then begin
      Fmt.epr
        "bench-history: neither %s nor %s has a readable \"cells\" block@."
        throughput campaign;
      exit 2
    end;
    let past = Experiments.Bench_history.load history in
    let regressions =
      List.concat_map
        (fun row ->
          Experiments.Bench_history.check ~window ~threshold_pct:threshold past
            row)
        sources
    in
    if not check_only then
      List.iter (Experiments.Bench_history.append history) sources;
    let all = past @ sources in
    print_string (Experiments.Bench_history.to_table all);
    if not check_only then
      Fmt.epr "[bench-history] appended %d row%s to %s@." (List.length sources)
        (if List.length sources = 1 then "" else "s")
        history;
    if regressions <> [] then begin
      Fmt.epr "%s@." (Experiments.Bench_history.regressions_report regressions);
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "bench-history"
       ~doc:
         "Append the current bench cells as dated trend rows and flag \
          execs/sec regressions against the trailing window")
    Term.(
      const run $ history $ throughput $ campaign $ date $ label $ threshold
      $ window $ check_only)

let () =
  let doc = "path-aware coverage-guided fuzzing (CGO 2026 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "pathfuzz" ~doc)
          [
            subjects_cmd;
            fuzz_cmd;
            profile_cmd;
            path_profile_cmd;
            cfg_cmd;
            tables_cmd;
            bench_throughput_cmd;
            bench_campaign_cmd;
            stats_cmd;
            bench_history_cmd;
          ]))
